"""The distributed texture search system (Sec. 8, Fig. 6).

``DistributedSearchSystem`` shards reference matrices round-robin over
its GPU containers (the paper allocates them "equally to those 14 GPU
containers"), persists every record in the Redis-like store, and
answers searches by scatter-gather: the query fans out to all nodes,
each scans its shard, and the best match wins globally.

Simulated wall-clock of one search is the *maximum* node time (the
nodes run concurrently) plus a fixed web/network overhead; aggregate
throughput is the sum of node throughputs — this is the arithmetic
behind the paper's 872,984 img/s on 14 P100s.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field

import numpy as np

from ..core.config import EngineConfig
from ..core.results import ImageMatch, SearchResult
from ..errors import (
    ClusterError,
    DegradedClusterError,
    NodeDownError,
    TransientNodeError,
)
from ..gpusim.device import DeviceSpec, TESLA_P100
from ..obs import (
    DeadlineFanOut,
    current_brownout,
    current_deadline,
    default_registry,
    default_tracer,
)
from ..obs.slo import installed_engine as _slo_engine
from ..obs.timeseries import advance_by as _ts_advance_by
from ..obs.timeseries import installed_recorder as _ts_recorder
from ..routing import CandidateRouter, RouteDecision, RouterPolicy
from ..routing import build_router as _make_router
from .breaker import BreakerPolicy
from .enrollment import (
    DeletionAck,
    EnrollmentAck,
    EpochRegistry,
    TombstoneLog,
    count_op,
)
from .health import NodeHealth
from .kvstore import KVStore
from .node import NodeConfig, SearchNode
from .replica import (
    WARMUP_BASE_US,
    WARMUP_US_PER_REF,
    ReplicaGroup,
    ReplicaState,
)
from .serialization import FeatureRecord, deserialize_record, serialize_record

__all__ = [
    "ClusterGroupResult",
    "ClusterSearchResult",
    "DistributedSearchSystem",
    "RetryPolicy",
    "STATS_SCHEMA_VERSION",
]

#: request routing + result aggregation overhead of the web tier per
#: search (REST parsing, Redis metadata lookups, fan-out RPC).
WEB_TIER_OVERHEAD_US = 2000.0

#: version of the ``GET /stats`` payload shape; bump when keys change.
STATS_SCHEMA_VERSION = 8

_REG = default_registry()
_TRACER = default_tracer()
_SEARCHES = _REG.counter(
    "repro_cluster_searches_total",
    "Scatter-gather searches answered by the cluster",
    ("kind",),
)
_RETRIES = _REG.counter(
    "repro_cluster_retries_total",
    "Extra node attempts spent after transient failures or timeouts",
)
_UNSEARCHED = _REG.counter(
    "repro_cluster_unsearched_shards_total",
    "Populated shards skipped after exhausting their retry budget",
)
_PARTIALS = _REG.counter(
    "repro_cluster_partial_results_total",
    "Searches answered with at least one shard missing",
)
_FAILOVERS = _REG.counter(
    "repro_cluster_failovers_total",
    "DOWN nodes decommissioned and re-hydrated onto survivors",
)
_BREAKER_SKIPS = _REG.counter(
    "repro_cluster_breaker_skipped_total",
    "Node attempts skipped because the node's circuit breaker was open",
)
_BROWNOUT_SKIPS = _REG.counter(
    "repro_cluster_brownout_shards_skipped_total",
    "Populated shards left unsearched by web-tier brownout degradation",
)
_DEADLINE_SKIPS = _REG.counter(
    "repro_cluster_deadline_skipped_shards_total",
    "Populated shards never attempted because the request deadline had expired",
)
_UNROUTED_SKIPS = _REG.counter(
    "repro_cluster_unrouted_shards_total",
    "Populated shards deliberately not fanned out to because the "
    "candidate router nominated other shards (pruning, not faults)",
)
_REPLICA_RETRIES = _REG.counter(
    "repro_cluster_replica_retries_total",
    "Read slices transparently retried on a sibling replica after the "
    "chosen reader failed (the shard only lands in unsearched_shards "
    "when every serving replica is exhausted)",
)
_SCALE_EVENTS = _REG.counter(
    "repro_cluster_scale_events_total",
    "Fleet topology changes (shards commissioned/decommissioned, "
    "replicas attached/detached)",
    ("action",),
)
_ROUTER_HITS = _REG.counter(
    "repro_router_candidate_hit_total",
    "Routed searches by whether the pruned gather still produced a "
    "scoring match (a live proxy for candidate recall; the routing "
    "bench measures true recall against the exhaustive path)",
    ("result",),
)
_SEARCH_SINGLE = _SEARCHES.labels(kind="single")
_SEARCH_GROUP = _SEARCHES.labels(kind="group")


def _jitter_draw(seed: int, *parts: object) -> float:
    """Reproducible uniform in [0, 1) keyed on ``parts`` (same recipe
    as :mod:`repro.distributed.faults` — no global RNG, no ordering
    sensitivity)."""
    token = ":".join(str(p) for p in (seed, *parts)).encode()
    digest = hashlib.blake2b(token, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2**64


@dataclass(frozen=True)
class RetryPolicy:
    """Per-node retry/timeout knobs for scatter-gather searches.

    A node attempt fails on a transient error or when its simulated
    latency exceeds ``timeout_us`` (0 disables the timeout).  Failed
    attempts are retried up to ``max_attempts`` total, waiting
    ``backoff_us * backoff_multiplier**retry`` of simulated time before
    each retry; a node that exhausts its attempts is skipped and its
    shard reported unsearched.

    ``jitter_fraction`` opts into deterministic *full jitter*: each
    wait is scaled by ``1 - jitter_fraction * u`` with ``u`` a hashed
    uniform draw keyed on ``(jitter_seed, key, retry_index)``, so
    synchronized retries against a recovering node de-correlate
    (thundering-herd avoidance) while every run replays bit-identically.
    At the default ``jitter_fraction=0`` the waits are exactly the
    un-jittered schedule.
    """

    max_attempts: int = 3
    timeout_us: float = 0.0
    backoff_us: float = 1000.0
    backoff_multiplier: float = 2.0
    jitter_fraction: float = 0.0
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.timeout_us < 0 or self.backoff_us < 0:
            raise ValueError("timeout_us and backoff_us must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ValueError(
                f"jitter_fraction must be in [0, 1], got {self.jitter_fraction}"
            )

    def backoff_for(self, retry_index: int, key: object = None) -> float:
        """Simulated wait before the ``retry_index``-th retry (0-based).

        ``key`` scopes the jitter draw (callers pass the node id so
        distinct nodes de-correlate); it is ignored when
        ``jitter_fraction`` is 0, which returns the exact un-jittered
        schedule bit-for-bit.
        """
        base = self.backoff_us * self.backoff_multiplier**retry_index
        if self.jitter_fraction == 0.0:
            return base
        u = _jitter_draw(self.jitter_seed, key, retry_index)
        return base * (1.0 - self.jitter_fraction * u)


@dataclass
class ClusterSearchResult:
    """Scatter-gather outcome across the whole cluster.

    ``partial`` is True when at least one populated shard could not be
    searched (its node was down, timing out, breaker-open, shed by
    brownout, or erroring past the retry budget) *or* when any node
    answered with a deadline-truncated sweep; ``unsearched_shards``
    lists skipped node ids and ``retries`` counts the extra attempts
    the gather spent.  ``deadline_expired`` is True when the request
    deadline cut the gather short — whole shards skipped, or per-node
    sweeps truncated mid-scan (the matches on the shards that *were*
    searched are bit-identical to a full search's).

    Routing metadata is kept strictly apart from fault metadata:
    ``routed`` marks a search whose fan-out was pruned by the
    candidate router, ``unrouted_shards`` lists populated shards the
    router deliberately did not nominate (never counted in
    ``unsearched_shards`` and never setting ``partial`` — pruning is
    a first-tier decision, not a failure), and ``images_pruned``
    totals the cached images the nominated shards' engines skipped.
    ``cascade_pruned`` totals the images whose exact GEMM a cascade
    prefilter backend skipped across the answering shards (those
    images still count into ``images_searched``).
    """

    matches: list[ImageMatch]
    per_node: dict[str, SearchResult]
    elapsed_us: float
    images_searched: int
    partial: bool = False
    unsearched_shards: list[str] = field(default_factory=list)
    retries: int = 0
    deadline_expired: bool = False
    routed: bool = False
    unrouted_shards: list[str] = field(default_factory=list)
    images_pruned: int = 0
    cascade_pruned: int = 0
    #: index epoch each answering shard's corpus was at while it was
    #: searched — the read-your-writes handle: a client holding an
    #: :class:`~repro.distributed.enrollment.EnrollmentAck` checks
    #: ``corpus_epoch[ack.node_id] >= ack.epoch`` to confirm the search
    #: observed its enrollment.
    corpus_epoch: dict[str, int] = field(default_factory=dict)

    def best(self) -> ImageMatch | None:
        if not self.matches:
            return None
        return max(self.matches, key=lambda m: (m.score, m.reference_id != ""))

    def top(self, count: int = 1) -> list[ImageMatch]:
        return sorted(self.matches, key=lambda m: (-m.score, m.reference_id))[:count]

    @property
    def throughput_images_per_s(self) -> float:
        if self.elapsed_us <= 0:
            return 0.0
        return self.images_searched / (self.elapsed_us * 1e-6)


@dataclass
class ClusterGroupResult:
    """Outcome of one fused query-group scatter-gather.

    ``results`` holds one :class:`ClusterSearchResult` per query in
    submission order.  Partial-result metadata propagates *per query*:
    each member carries its own ``partial`` flag and its own (private)
    ``unsearched_shards`` list — a shard that died mid-group leaves
    every member of the group flagged, and downstream consumers (the
    serving tier fuses queries from unrelated requests into one group)
    can attach or mutate one request's metadata without aliasing
    another's.
    """

    results: list[ClusterSearchResult] = field(default_factory=list)
    elapsed_us: float = 0.0
    retries: int = 0
    unsearched_shards: list[str] = field(default_factory=list)
    deadline_expired: bool = False
    routed: bool = False
    unrouted_shards: list[str] = field(default_factory=list)
    images_pruned: int = 0
    cascade_pruned: int = 0
    #: shard -> index epoch observed during the gather (see
    #: :attr:`ClusterSearchResult.corpus_epoch`).
    corpus_epoch: dict[str, int] = field(default_factory=dict)

    @property
    def group_size(self) -> int:
        return len(self.results)

    @property
    def partial(self) -> bool:
        return bool(self.unsearched_shards) or self.deadline_expired


class DistributedSearchSystem:
    """Fourteen-GPU-container texture identification service (scalable
    to any node count)."""

    def __init__(
        self,
        n_nodes: int = 14,
        engine_config: EngineConfig | None = None,
        device_spec: DeviceSpec = TESLA_P100,
        node_config: NodeConfig | None = None,
        store: KVStore | None = None,
        placement: str = "round-robin",
        retry_policy: RetryPolicy | None = None,
        min_shard_fraction: float = 0.0,
        auto_failover: bool = True,
        fault_injector=None,
        health_policy=None,
        breaker_policy: BreakerPolicy | None = None,
        router_policy: RouterPolicy | None = None,
        replication_factor: int = 1,
    ) -> None:
        if n_nodes < 1:
            raise ClusterError("a cluster needs at least one node")
        if not 0.0 <= min_shard_fraction <= 1.0:
            raise ClusterError("min_shard_fraction must be in [0, 1]")
        if replication_factor < 1:
            raise ClusterError("replication_factor must be >= 1")
        self.engine_config = engine_config or EngineConfig(m=384, n=768)
        self.store = store or KVStore()
        #: durable per-shard epoch marks + deletion tombstones (the
        #: epoched-corpus contract lives in the KV store, like the
        #: feature blobs it protects).
        self.epochs = EpochRegistry(self.store)
        self.tombstones = TombstoneLog(self.store)
        self.retry_policy = retry_policy or RetryPolicy()
        self.min_shard_fraction = float(min_shard_fraction)
        self.auto_failover = bool(auto_failover)
        #: two-tier retrieval: ``None`` keeps the exhaustive
        #: scatter-gather bit-identical to the pre-routing system.
        self.router_policy = router_policy
        self._router: CandidateRouter | None = None
        self._node_config = node_config
        self._device_spec = device_spec
        self._health_policy = health_policy
        self._breaker_policy = breaker_policy
        self._node_seq = n_nodes  # next fresh node index (ids are never reused)
        self.fault_injector = None
        self.replication_factor = int(replication_factor)
        #: autoscaler attached via :meth:`Autoscaler.attach` (stats only).
        self.autoscaler = None
        #: node-seconds cost accounting on the simulated clock.
        self._node_started_us: dict[str, float] = {}
        self._node_seconds_retired = 0.0
        self.nodes = [
            SearchNode(
                f"gpu-{i:02d}", self.engine_config, device_spec, node_config,
                health_policy=health_policy, breaker_policy=breaker_policy,
            )
            for i in range(n_nodes)
        ]
        #: shard_id -> the replica group serving that shard.  Shard ids
        #: are minted from the founding primary's node id, so with
        #: ``replication_factor=1`` the topology (and every result
        #: payload keyed by shard) is bit-identical to the pre-replica
        #: system.
        self.groups: dict[str, ReplicaGroup] = {}
        for node in self.nodes:
            # a rebuilt cluster over a pre-existing store continues each
            # shard's epoch sequence instead of restarting from zero
            node.epoch = self.epochs.get(node.node_id)
            self.groups[node.node_id] = ReplicaGroup(node.node_id, [node])
            self._stamp_start(node)
        from .sharding import ConsistentHashPlacement, RoundRobinPlacement

        shard_ids = [node.node_id for node in self.nodes]
        if placement == "round-robin":
            self.placement = RoundRobinPlacement(shard_ids)
        elif placement == "consistent-hash":
            self.placement = ConsistentHashPlacement(shard_ids)
        else:
            raise ClusterError(f"unknown placement policy {placement!r}")
        self._placement: dict[str, str] = {}
        if fault_injector is not None:
            fault_injector.install(self)
        for shard_id in list(self.groups):
            for _ in range(self.replication_factor - 1):
                self.add_replica(shard_id)

    # ------------------------------------------------------------------
    def _node_by_id(self, node_id: str) -> SearchNode:
        for node in self.nodes:
            if node.node_id == node_id:
                return node
        raise ClusterError(f"unknown node {node_id!r}")

    def _group_for_shard(self, shard_id: str) -> ReplicaGroup:
        try:
            return self.groups[shard_id]
        except KeyError:
            raise ClusterError(f"unknown shard {shard_id!r}") from None

    def _group_of_node(self, node_id: str) -> ReplicaGroup | None:
        for group in self.groups.values():
            if group.get(node_id) is not None:
                return group
        return None

    def _clock_us(self) -> float | None:
        """Current simulated instant, or ``None`` when no telemetry
        clock is installed (then warm-up/drain time is not modelled)."""
        recorder = _ts_recorder()
        return recorder.now_us if recorder is not None else None

    def _stamp_start(self, node: SearchNode) -> None:
        now = self._clock_us()
        self._node_started_us[node.node_id] = 0.0 if now is None else now

    def _retire_node(self, node: SearchNode) -> None:
        started = self._node_started_us.pop(node.node_id, None)
        now = self._clock_us()
        if started is not None and now is not None:
            self._node_seconds_retired += max(now - started, 0.0) / 1e6

    def node_seconds(self) -> float:
        """Fleet cost so far in node-seconds of simulated time (retired
        nodes' lifetimes plus every live node's time since attach)."""
        total = self._node_seconds_retired
        now = self._clock_us()
        if now is None:
            return total
        for node in self.nodes:
            started = self._node_started_us.get(node.node_id)
            if started is not None:
                total += max(now - started, 0.0) / 1e6
        return total

    def _replica_unreachable(self, node: SearchNode) -> bool:
        """Whether a mutation cannot land on this replica right now (it
        is behind from here on; repair detaches it when siblings hold
        the shard)."""
        if node.health.state is NodeHealth.DOWN:
            return True
        return (
            self.fault_injector is not None
            and self.fault_injector.is_crashed(node.node_id)
        )

    def _mutate_group(self, group: ReplicaGroup, op) -> None:
        """Apply one corpus mutation to every replica of ``group`` so
        all replicas advance the same epoch sequence in lockstep.

        Warming and draining replicas are included (they must stay
        consistent for promotion / in-flight work).  An unreachable
        replica is skipped *only when siblings exist* — it has diverged
        and repair will detach it; a single-replica shard mutates
        unconditionally, exactly the pre-replica behaviour (the KV
        store remains the system of record either way).
        """
        siblings = len(group.nodes) > 1
        for node in group.nodes:
            if siblings and self._replica_unreachable(node):
                continue
            op(node)

    def add(self, ref_id: str, descriptors: np.ndarray) -> str:
        """Enrol a reference; returns the shard that owns it.

        The raw descriptors are also persisted in the KV store (the
        system of record) so containers can re-hydrate after restarts.
        Every replica of the owning shard observes the mutation, so the
        group's ``corpus_epoch`` advances in lockstep.
        """
        ref_id = str(ref_id)
        record = FeatureRecord(
            ref_id=ref_id,
            matrix=np.asarray(descriptors, dtype=np.float32),
            precision="fp32",
            scale=1.0,
        )
        self.store.set(f"feature:{ref_id}", serialize_record(record))
        if ref_id in self._placement:
            group = self._group_for_shard(self._placement[ref_id])  # update in place
        else:
            group = self._group_for_shard(self.placement.place(ref_id))
            self._placement[ref_id] = group.shard_id
        self._mutate_group(group, lambda node: node.add(ref_id, descriptors))
        self.store.hset("placement", ref_id, group.shard_id.encode())
        # the blob supersedes any earlier delete of this id; clearing
        # the tombstone makes re-enrollment a fresh logical record
        self.tombstones.clear(ref_id)
        self.epochs.record(group.shard_id, group.epoch)
        if self._router is not None:
            self._router.add(ref_id, record.matrix, group.shard_id)
        return group.shard_id

    def enroll(self, ref_id: str, descriptors: np.ndarray) -> EnrollmentAck:
        """Online enrollment under live traffic; returns an ack whose
        ``epoch`` gives the client read-your-writes (see
        :attr:`ClusterSearchResult.corpus_epoch`).

        Unlike bulk :meth:`add`, the target shard's fault gate runs
        *before* anything is persisted: a crashed or flaky node raises
        (:class:`~repro.errors.NodeDownError` /
        :class:`~repro.errors.TransientNodeError`) and neither the KV
        store nor the placement map mutates — the client can retry,
        and after auto-failover the retry lands on a healthy owner.
        """
        ref_id = str(ref_id)
        with _TRACER.span("enroll", layer="cluster", ref=ref_id, op="enroll") as span:
            updated = ref_id in self._placement
            # peek, don't place: the gate must run against the shard
            # add() will commit to, and round-robin's place() consumes
            # its cursor
            target = self._placement.get(ref_id) or self.placement.peek(ref_id)
            group = self._group_for_shard(target)
            # gate the *full* replica set, not just the primary: the
            # mutation must land on every active replica to keep the
            # group's epochs in lockstep, so any crashed/flaky replica
            # fails the enrollment before anything is persisted
            for replica in group.active():
                replica._gate()
            shard_id = self.add(ref_id, descriptors)
            epoch = self.epochs.get(shard_id)
            count_op("update" if updated else "enroll")
            if span is not None:
                span.set(node=shard_id, epoch=epoch, updated=updated)
        _ts_advance_by(WEB_TIER_OVERHEAD_US)
        return EnrollmentAck(
            ref_id=ref_id, node_id=shard_id, epoch=epoch, updated=updated
        )

    def remove(self, ref_id: str) -> bool:
        ref_id = str(ref_id)
        shard_id = self._placement.pop(ref_id, None)
        if shard_id is None:
            return False
        group = self._group_for_shard(shard_id)
        # tombstone first: whatever replays after a crash from here on
        # (re-hydration, replica warm-up, cache warming) sees the
        # delete — a replica that missed this mutation can never
        # resurrect the reference on any sibling
        self.tombstones.mark(ref_id, shard_id, group.epoch + 1)
        self._mutate_group(group, lambda node: node.remove(ref_id))
        self.epochs.record(shard_id, group.epoch)
        self.store.delete(f"feature:{ref_id}")
        self.store.hdel("placement", ref_id)
        if self._router is not None:
            self._router.remove(ref_id)
        return True

    def delete(self, ref_id: str) -> DeletionAck:
        """Online deletion; idempotent (deleting an unknown id still
        writes a tombstone so a racing re-hydration of a stale blob
        cannot resurrect it)."""
        ref_id = str(ref_id)
        with _TRACER.span("enroll", layer="cluster", ref=ref_id, op="delete") as span:
            owner = self._placement.get(ref_id)
            if owner is not None:
                deleted = self.remove(ref_id)
                epoch = self.epochs.get(owner)
            else:
                self.tombstones.mark(ref_id, "", 0)
                deleted = False
                epoch = 0
            count_op("delete")
            if span is not None:
                span.set(node=owner or "", epoch=epoch, deleted=deleted)
        _ts_advance_by(WEB_TIER_OVERHEAD_US)
        return DeletionAck(
            ref_id=ref_id, node_id=owner or "", epoch=epoch, deleted=deleted
        )

    def has(self, ref_id: str) -> bool:
        return str(ref_id) in self._placement

    def get_record_bytes(self, ref_id: str) -> bytes | None:
        return self.store.get(f"feature:{ref_id}")

    # ------------------------------------------------------------------
    # elasticity / failover
    # ------------------------------------------------------------------
    def _mint_node(self, device_spec: DeviceSpec | None = None) -> SearchNode:
        """Mint a fresh GPU container with the next id in the sequence.

        Ids are minted from a monotonically increasing sequence, never
        from the current node count: after ``remove_node`` the count
        shrinks, and reusing it would mint an id that already exists,
        corrupting placement.
        """
        node = SearchNode(
            f"gpu-{self._node_seq:02d}",
            self.engine_config,
            device_spec or self.nodes[0].engine.device.spec,
            self._node_config,
            health_policy=self._health_policy,
            breaker_policy=self._breaker_policy,
        )
        self._node_seq += 1
        if self.fault_injector is not None:
            node.fault_injector = self.fault_injector
        return node

    def add_node(self, device_spec: DeviceSpec | None = None) -> SearchNode:
        """Attach a fresh (empty) GPU container as a new shard."""
        node = self._mint_node(device_spec)
        node.epoch = self.epochs.get(node.node_id)
        self.nodes.append(node)
        self.groups[node.node_id] = ReplicaGroup(node.node_id, [node])
        self.placement.add_node(node.node_id)
        self._stamp_start(node)
        _SCALE_EVENTS.labels(action="add_shard").inc()
        return node

    def add_replica(self, shard_id: str) -> SearchNode:
        """Attach a fresh replica to an existing shard's group.

        The replica warms its hybrid cache from the KV store (the
        system of record; tombstoned references are skipped so a delete
        that raced the warm-up never resurrects), syncs its index epoch
        from the durable registry, and — when a telemetry clock is
        installed — enters ``WARMING`` until its readiness gate at
        ``now + WARMUP_BASE_US + WARMUP_US_PER_REF * n_refs`` passes.
        It observes corpus mutations from the moment it is attached, so
        it is consistent the instant it starts serving.
        """
        group = self._group_for_shard(shard_id)
        node = self._mint_node()
        with _TRACER.span(
            "cluster.add_replica", layer="cluster", shard=shard_id,
        ) as span:
            keys = [
                f"feature:{ref}"
                for ref, owner in sorted(self._placement.items())
                if owner == group.shard_id
            ]
            loaded = node.hydrate_from_store(self.store, keys)
            node.epoch = max(self.epochs.get(group.shard_id), group.epoch)
            now = self._clock_us()
            if now is not None:
                node.replica_state = ReplicaState.WARMING
                node.ready_at_us = (
                    now + WARMUP_BASE_US + WARMUP_US_PER_REF * node.n_references
                )
            self.nodes.append(node)
            group.attach(node)
            self._stamp_start(node)
            if span is not None:
                span.set(node=node.node_id, warmed=loaded)
        _SCALE_EVENTS.labels(action="add_replica").inc()
        return node

    def remove_replica(self, shard_id: str, node_id: str | None = None) -> SearchNode:
        """Gracefully shrink a shard's group by one replica.

        The chosen replica (the newest attached, unless ``node_id``
        picks one) stops taking new reads immediately, keeps observing
        mutations while it finishes in-flight work, and is detached
        after ``DRAIN_GRACE_US`` of simulated time by
        :meth:`poll_lifecycle` (immediately when no clock is
        installed).  The last replica of a shard cannot be removed this
        way — that is shard decommissioning (:meth:`remove_node`).
        """
        group = self._group_for_shard(shard_id)
        active = group.active()
        if len(active) <= 1:
            raise ClusterError(
                f"cannot remove the last replica of shard {shard_id!r}; "
                "use remove_node to decommission the shard"
            )
        node = group.get(node_id) if node_id is not None else active[-1]
        if node is None:
            raise ClusterError(f"shard {shard_id!r} has no replica {node_id!r}")
        if node.replica_state is ReplicaState.DRAINING:
            return node
        now = self._clock_us()
        node.replica_state = ReplicaState.DRAINING
        node.draining_since_us = 0.0 if now is None else now
        _SCALE_EVENTS.labels(action="remove_replica").inc()
        self.poll_lifecycle()
        return node

    def poll_lifecycle(self) -> list[str]:
        """Advance replica lifecycles on the simulated clock: promote
        warming replicas whose readiness gate passed, detach draining
        replicas whose grace elapsed.  Returns the detached node ids."""
        now = self._clock_us()
        detached: list[str] = []
        for group in self.groups.values():
            group.promote_ready(now)
            for node in group.drained(now):
                if len(group.nodes) <= 1:
                    continue  # never drain away a shard's only replica
                self._detach_replica(group, node)
                detached.append(node.node_id)
        return detached

    def _detach_replica(self, group: ReplicaGroup, node: SearchNode) -> None:
        """Drop one replica from its group (siblings keep the shard, so
        nothing re-hydrates and no placement changes)."""
        group.detach(node.node_id)
        self.nodes.remove(node)
        self._retire_node(node)

    def remove_node(self, node_id: str) -> int:
        """Decommission a container.

        A container whose replica group has siblings is simply detached
        — the siblings keep serving the shard, nothing moves.  The last
        replica of a shard decommissions the whole shard: the KV store
        is the system of record (Sec. 8), so the departing shard's
        references are re-hydrated from their serialized records onto
        the surviving shards round-robin.  Returns the number of
        references reassigned.  Removing the last node raises.
        """
        victim = self._node_by_id(node_id)
        group = self._group_of_node(node_id)
        if group is not None and len(group.nodes) > 1:
            self._detach_replica(group, victim)
            _SCALE_EVENTS.labels(action="remove_replica").inc()
            return 0
        if len(self.nodes) <= 1:
            raise ClusterError("cannot remove the last node")
        shard_id = victim.shard_id
        self.nodes.remove(victim)
        self.groups.pop(shard_id, None)
        self._retire_node(victim)
        self.placement.remove_node(shard_id)
        _SCALE_EVENTS.labels(action="remove_shard").inc()
        orphaned = [ref for ref, owner in self._placement.items() if owner == shard_id]
        adopters: set[str] = set()
        for ref_id in orphaned:
            blob = self.store.get(f"feature:{ref_id}")
            if blob is None or self.tombstones.contains(ref_id):
                # record lost with the node — or deleted while the node
                # was dying (the tombstone outlives the blob, so a
                # stale blob can never resurrect a deleted reference):
                # drop the placement entry either way
                del self._placement[ref_id]
                self.store.hdel("placement", ref_id)
                if self._router is not None:
                    self._router.remove(ref_id)
                continue
            adopter = self._group_for_shard(self.placement.place(ref_id))
            record = deserialize_record(blob)
            self._mutate_group(adopter, lambda node: node.add_record(record))
            self._placement[ref_id] = adopter.shard_id
            self.store.hset("placement", ref_id, adopter.shard_id.encode())
            adopters.add(adopter.shard_id)
            if self._router is not None:
                self._router.reassign(ref_id, adopter.shard_id)
        # adopting shards advanced their epochs (re-hydration is a
        # mutation of their reference sets); the dead shard's mark is
        # retired with it
        for adopter_id in sorted(adopters):
            self.epochs.record(adopter_id, self._group_for_shard(adopter_id).epoch)
        self.epochs.forget(shard_id)
        return len(orphaned)

    # ------------------------------------------------------------------
    # two-tier retrieval: the coarse candidate-routing tier
    # ------------------------------------------------------------------
    def build_router(self) -> CandidateRouter:
        """(Re)build the coarse routing tier from the system of record.

        The router trains on the raw descriptor records persisted in
        the KV store (``feature:*``) — the same blobs failover
        re-hydrates from — pooled to one vector per reference, with
        shard ownership taken from the live placement map.  References
        whose blobs were lost with a dead node are unroutable and
        excluded (they are equally unsearchable by the exhaustive
        path).  Subsequent :meth:`add` / :meth:`remove` /
        :meth:`remove_node` calls keep the router's corpus in sync;
        the routing index itself rebuilds lazily on the next
        nomination after a mutation.
        """
        if self.router_policy is None:
            raise ClusterError("cluster has no router_policy configured")
        router = _make_router(self.router_policy, d=self.engine_config.d)
        for ref_id, node_id in self._placement.items():
            blob = self.store.get(f"feature:{ref_id}")
            if blob is None:
                continue
            record = deserialize_record(blob)
            matrix = record.matrix.astype(np.float32)
            if record.precision == "fp16" and record.scale != 1.0:
                matrix = matrix / np.float32(record.scale)
            router.add(ref_id, matrix, node_id)
        router.fit()
        self._router = router
        return router

    @property
    def router(self) -> CandidateRouter | None:
        """The active routing tier (``None`` until the first routed
        search builds it, or when no ``router_policy`` is set)."""
        return self._router

    def _route(
        self,
        queries,
        group: bool,
        nprobe: int | None,
        recall_target: float | None,
    ) -> RouteDecision | None:
        """First-tier nomination for one request, or ``None`` when
        routing is disabled."""
        if self.router_policy is None:
            return None
        if self._router is None:
            self.build_router()
        if group:
            return self._router.nominate_group(queries, nprobe, recall_target)
        return self._router.nominate(queries, nprobe, recall_target)

    def _partition_routed(
        self, populated: list[ReplicaGroup], route: RouteDecision | None
    ) -> tuple[list[ReplicaGroup], list[str], bool]:
        """Split the populated shard set by the route's nomination.

        Returns ``(nominated_groups, unrouted_shard_ids, routed)``;
        an exhaustive (or absent) route nominates everything.
        """
        if route is None or route.exhaustive:
            return populated, [], False
        shard_set = set(route.shard_ids)
        nominated = [g for g in populated if g.shard_id in shard_set]
        unrouted = [g.shard_id for g in populated if g.shard_id not in shard_set]
        if unrouted:
            _UNROUTED_SKIPS.inc(len(unrouted))
        return nominated, unrouted, True

    # ------------------------------------------------------------------
    # fault-tolerant scatter-gather
    # ------------------------------------------------------------------
    def _attempt_with_retry(self, node: SearchNode, op):
        """Run one node operation under the retry policy.

        ``op(node)`` must return ``(payload, elapsed_us)``.  Returns
        ``(payload | None, node_time_us, retries)``: ``None`` means the
        shard went unsearched; ``node_time_us`` is the simulated time
        this node kept the gather waiting (failed attempts included).

        Every attempt outcome feeds the node's circuit breaker (when
        one is configured), and backoff waits are charged against the
        ambient request deadline so a retry storm cannot hide from the
        budget.
        """
        policy = self.retry_policy
        deadline = current_deadline()
        breaker = node.breaker
        spent_us = 0.0
        retries = 0

        def _wait(attempt: int) -> float:
            wait_us = policy.backoff_for(attempt, key=node.node_id)
            if deadline is not None:
                deadline.charge(wait_us)
            return wait_us

        for attempt in range(policy.max_attempts):
            try:
                payload, elapsed_us = op(node)
            except NodeDownError:
                # a dead container fails fast; no point retrying it
                if breaker is not None:
                    breaker.record_failure()
                return None, spent_us, retries
            except TransientNodeError:
                if breaker is not None:
                    breaker.record_failure()
                if node.health.state is NodeHealth.DOWN:
                    # the failure streak just crossed the down threshold
                    return None, spent_us, retries
                if attempt + 1 >= policy.max_attempts:
                    return None, spent_us, retries
                spent_us += _wait(attempt)
                retries += 1
                continue
            if policy.timeout_us and elapsed_us > policy.timeout_us:
                # the caller hangs up at the deadline; the node's work
                # past it is wasted, so only the budget is charged
                spent_us += policy.timeout_us
                node.health.record_failure()
                if breaker is not None:
                    breaker.record_failure()
                if deadline is not None:
                    # the engine charged its full sweep while running;
                    # refund the portion past the hang-up point
                    deadline.spent_us -= max(elapsed_us - policy.timeout_us, 0.0)
                if node.health.state is NodeHealth.DOWN or attempt + 1 >= policy.max_attempts:
                    return None, spent_us, retries
                spent_us += _wait(attempt)
                retries += 1
                continue
            if breaker is not None:
                breaker.record_success()
            return payload, spent_us + elapsed_us, retries
        return None, spent_us, retries

    def _populated_nodes(self) -> list[SearchNode]:
        return [node for node in self.nodes if node.n_references > 0]

    def _populated_groups(self) -> list[ReplicaGroup]:
        return [g for g in self.groups.values() if g.n_references > 0]

    def _gather_targets(self, populated: list[ReplicaGroup]) -> tuple[list[ReplicaGroup], list[str]]:
        """Apply any ambient brownout to the fan-out target set.

        When the web tier has entered brownout
        (:func:`repro.obs.brownout_scope`), the gather degrades to a
        fraction of the populated shards instead of rejecting the
        request outright.  The fraction is floored at
        ``min_shard_fraction`` so a brownout can never *itself* trip
        :class:`DegradedClusterError`.  Returns ``(targets,
        skipped_shard_ids)``.
        """
        fraction = current_brownout()
        if fraction is None or not populated:
            return populated, []
        fraction = max(fraction, self.min_shard_fraction)
        keep = max(1, math.ceil(fraction * len(populated)))
        if keep >= len(populated):
            return populated, []
        skipped = [group.shard_id for group in populated[keep:]]
        _BROWNOUT_SKIPS.inc(len(skipped))
        return populated[:keep], skipped

    @staticmethod
    def _record_gather(search_counter, retries: int, unsearched: list[str]) -> None:
        """Fault-tolerance accounting for one completed scatter-gather."""
        search_counter.inc()
        if retries:
            _RETRIES.inc(retries)
        if unsearched:
            _UNSEARCHED.inc(len(unsearched))
            _PARTIALS.inc()

    def _check_degradation(self, populated: list[SearchNode], unsearched: list[str]) -> None:
        searched = len(populated) - len(unsearched)
        if populated and searched / len(populated) < self.min_shard_fraction:
            raise DegradedClusterError(searched, len(populated), self.min_shard_fraction)

    def search(
        self,
        query_descriptors: np.ndarray,
        nprobe: int | None = None,
        recall_target: float | None = None,
    ) -> ClusterSearchResult:
        """Scatter the query to all serving nodes, gather and rank.

        With a ``router_policy`` configured, the coarse routing tier
        first nominates candidate shards and per-shard candidate
        references: only the nominated shards are fanned out to (the
        rest land in ``unrouted_shards`` — deliberate pruning, never
        ``partial``), and each nominated shard's engine restricts its
        exact sweep to the nominated reference batches.  ``nprobe`` /
        ``recall_target`` override the policy per request.  A router
        that cannot nominate falls back to the exhaustive fan-out, and
        a cluster without a policy is bit-identical to the pre-routing
        system.

        Nodes that are down, keep erroring, or exceed the per-attempt
        timeout are skipped after bounded retries: the result comes back
        ``partial=True`` with their shards listed in
        ``unsearched_shards``.  If fewer than ``min_shard_fraction`` of
        the *nominated* populated shards answered,
        :class:`DegradedClusterError` is raised instead.  With
        ``auto_failover`` enabled, nodes that went ``DOWN`` during the
        gather are decommissioned afterwards and their shards
        re-hydrated from the KV store onto the survivors.
        """
        with _TRACER.span("cluster.search", layer="cluster") as span:
            per_node: dict[str, SearchResult] = {}
            matches: list[ImageMatch] = []
            epochs_seen: dict[str, int] = {}
            slowest_us = 0.0
            images = 0
            retries = 0
            unsearched: list[str] = []
            route = self._route(
                query_descriptors, group=False,
                nprobe=nprobe, recall_target=recall_target,
            )
            populated = self._populated_groups()
            nominated, unrouted, routed = self._partition_routed(populated, route)
            targets, brownout_skipped = self._gather_targets(nominated)
            deadline = current_deadline()
            fanout = DeadlineFanOut(deadline) if deadline is not None else None
            deadline_skipped: list[str] = []
            if fanout is not None and fanout.expired_at_entry:
                # the budget was gone before the fan-out even started
                deadline_skipped = [group.shard_id for group in targets]
                _DEADLINE_SKIPS.inc(len(deadline_skipped))
                targets = []
            for group in targets:
                candidates = (
                    frozenset(route.per_shard.get(group.shard_id, ()))
                    if routed else None
                )
                def op(n: SearchNode, c=candidates):
                    r = n.search(query_descriptors, candidate_ids=c)
                    return r, r.elapsed_us

                readers = group.readers(self._clock_us())
                result = None
                shard_us = 0.0
                attempted = 0
                for i, replica in enumerate(readers):
                    if replica.breaker is not None and not replica.breaker.allow():
                        _BREAKER_SKIPS.inc()
                        continue
                    if attempted:
                        # the chosen reader failed; retry transparently
                        # on the next sibling before giving up the shard
                        _REPLICA_RETRIES.inc()
                    attempted += 1
                    if fanout is not None:
                        with fanout.branch():
                            result, node_us, node_retries = self._attempt_with_retry(replica, op)
                    else:
                        result, node_us, node_retries = self._attempt_with_retry(replica, op)
                    shard_us += node_us  # sibling failover is sequential
                    retries += node_retries
                    if result is not None:
                        break
                slowest_us = max(slowest_us, shard_us)
                if result is None:
                    unsearched.append(group.shard_id)
                    continue
                per_node[group.shard_id] = result
                epochs_seen[group.shard_id] = group.epoch
                matches.extend(result.matches)
                images += result.images_searched
            if fanout is not None:
                fanout.join()
            unsearched.extend(brownout_skipped)
            unsearched.extend(deadline_skipped)
            if self.auto_failover:
                self.repair()
            self._record_gather(_SEARCH_SINGLE, retries, unsearched)
            if routed:
                hit = any(m.score > 0 for m in matches)
                _ROUTER_HITS.labels(result="hit" if hit else "miss").inc()
            images_pruned = sum(r.images_pruned for r in per_node.values())
            cascade_pruned = sum(r.cascade_pruned for r in per_node.values())
            if span is not None:
                span.set(nodes=len(populated), retries=retries,
                         unsearched=len(unsearched),
                         unrouted=len(unrouted),
                         sim_elapsed_us=slowest_us + WEB_TIER_OVERHEAD_US)
            self._check_degradation(nominated, unsearched)
        deadline_expired = bool(deadline_skipped) or any(
            r.partial for r in per_node.values()
        )
        # standalone searches drive the simulated telemetry clock
        # relatively (no-op under a serving loop's exclusive scope)
        _ts_advance_by(slowest_us + WEB_TIER_OVERHEAD_US)
        return ClusterSearchResult(
            matches=matches,
            per_node=per_node,
            elapsed_us=slowest_us + WEB_TIER_OVERHEAD_US,
            images_searched=images,
            partial=bool(unsearched) or deadline_expired,
            unsearched_shards=unsearched,
            retries=retries,
            deadline_expired=deadline_expired,
            routed=routed,
            unrouted_shards=unrouted,
            images_pruned=images_pruned,
            cascade_pruned=cascade_pruned,
            corpus_epoch=epochs_seen,
        )

    def search_group(
        self,
        query_descriptor_list: list[np.ndarray],
        nprobe: int | None = None,
        recall_target: float | None = None,
    ) -> ClusterGroupResult:
        """Fused query-group scatter-gather (Sec. 5.3 applied
        cluster-wide) — the serving tier's unit of work.

        The fan-out is *per group*, not per query: each node answers
        the whole group in one sweep (:meth:`SearchNode.search_many`,
        one RPC and one fault/health gate per shard per group), and
        per-query results are gathered afterwards.  All queries share
        the group's completion time.  With a ``router_policy``, the
        group's nomination is the *union* of the per-query nominations
        (:meth:`RouteDecision.merge`) — the group shares one fan-out,
        so it probes every member's candidates; any member the router
        could not route falls the whole group back to exhaustive.
        Fault handling matches :meth:`search` at group granularity: a
        shard that dies mid-group leaves *every* query's result
        ``partial``, each with its own copy of ``unsearched_shards``
        (no shared mutable state between the per-query results).
        """
        if not query_descriptor_list:
            return ClusterGroupResult()
        n_queries = len(query_descriptor_list)
        with _TRACER.span(
            "cluster.search_group", layer="cluster", queries=n_queries,
        ) as span:
            per_query_matches: list[list[ImageMatch]] = [[] for _ in range(n_queries)]
            per_node_all: list[dict[str, SearchResult]] = [dict() for _ in range(n_queries)]
            epochs_seen: dict[str, int] = {}
            per_query_images = [0] * n_queries
            per_query_pruned = [0] * n_queries
            per_query_cascade = [0] * n_queries
            slowest_us = 0.0
            retries = 0
            unsearched: list[str] = []
            truncated = False  # any node answered with a deadline-cut sweep
            route = self._route(
                query_descriptor_list, group=True,
                nprobe=nprobe, recall_target=recall_target,
            )
            populated = self._populated_groups()
            nominated, unrouted, routed = self._partition_routed(populated, route)
            targets, brownout_skipped = self._gather_targets(nominated)
            deadline = current_deadline()
            fanout = DeadlineFanOut(deadline) if deadline is not None else None
            deadline_skipped: list[str] = []
            if fanout is not None and fanout.expired_at_entry:
                deadline_skipped = [group.shard_id for group in targets]
                _DEADLINE_SKIPS.inc(len(deadline_skipped))
                targets = []
            for group in targets:
                candidates = (
                    frozenset(route.per_shard.get(group.shard_id, ()))
                    if routed else None
                )
                # read scaling: the group's queries are partitioned
                # round-robin across the shard's serving replicas, which
                # sweep their slices concurrently — the shard's time is
                # the slowest slice, not the whole group on one node
                workers = []
                for replica in group.readers(self._clock_us()):
                    if replica.breaker is not None and not replica.breaker.allow():
                        _BREAKER_SKIPS.inc()
                        continue
                    workers.append(replica)
                if not workers:
                    unsearched.append(group.shard_id)
                    continue
                n_workers = len(workers)
                shard_us = 0.0
                shard_results: dict[int, SearchResult] = {}
                shard_failed = False
                for w, replica in enumerate(workers):
                    idxs = list(range(w, n_queries, n_workers))
                    if not idxs:
                        continue
                    queries = [query_descriptor_list[i] for i in idxs]

                    def op(n: SearchNode, q=queries, c=candidates):
                        grouped = n.search_many(q, candidate_ids=c)
                        return grouped, max(r.elapsed_us for r in grouped)

                    # a failed slice is retried transparently on the
                    # next sibling before the shard is given up
                    chain = workers[w:] + workers[:w]
                    grouped = None
                    slice_us = 0.0
                    for j, worker in enumerate(chain):
                        if j:
                            _REPLICA_RETRIES.inc()
                        if fanout is not None:
                            with fanout.branch():
                                grouped, node_us, node_retries = self._attempt_with_retry(worker, op)
                        else:
                            grouped, node_us, node_retries = self._attempt_with_retry(worker, op)
                        slice_us += node_us  # sibling failover is sequential
                        retries += node_retries
                        if grouped is not None:
                            break
                    shard_us = max(shard_us, slice_us)  # slices run concurrently
                    if grouped is None:
                        shard_failed = True
                        break
                    for i, result in zip(idxs, grouped):
                        shard_results[i] = result
                slowest_us = max(slowest_us, shard_us)
                if shard_failed:
                    unsearched.append(group.shard_id)
                    continue
                epochs_seen[group.shard_id] = group.epoch
                for q in sorted(shard_results):
                    result = shard_results[q]
                    truncated = truncated or result.partial
                    per_query_matches[q].extend(result.matches)
                    per_node_all[q][group.shard_id] = result
                    per_query_images[q] += result.images_searched
                    per_query_pruned[q] += result.images_pruned
                    per_query_cascade[q] += result.cascade_pruned
            if fanout is not None:
                fanout.join()
            unsearched.extend(brownout_skipped)
            unsearched.extend(deadline_skipped)
            if self.auto_failover:
                self.repair()
            self._record_gather(_SEARCH_GROUP, retries, unsearched)
            if routed:
                for q in range(n_queries):
                    hit = any(m.score > 0 for m in per_query_matches[q])
                    _ROUTER_HITS.labels(result="hit" if hit else "miss").inc()
            if span is not None:
                span.set(nodes=len(populated), retries=retries,
                         unsearched=len(unsearched),
                         unrouted=len(unrouted),
                         sim_elapsed_us=slowest_us + WEB_TIER_OVERHEAD_US)
            self._check_degradation(nominated, unsearched)
        elapsed = slowest_us + WEB_TIER_OVERHEAD_US
        deadline_expired = bool(deadline_skipped) or truncated
        _ts_advance_by(elapsed)
        return ClusterGroupResult(
            results=[
                ClusterSearchResult(
                    matches=per_query_matches[q],
                    per_node=per_node_all[q],
                    elapsed_us=elapsed,
                    images_searched=per_query_images[q],
                    partial=bool(unsearched) or deadline_expired,
                    unsearched_shards=list(unsearched),  # private copy per query
                    retries=retries,
                    deadline_expired=deadline_expired,
                    routed=routed,
                    unrouted_shards=list(unrouted),
                    images_pruned=per_query_pruned[q],
                    cascade_pruned=per_query_cascade[q],
                    corpus_epoch=dict(epochs_seen),  # private copy per query
                )
                for q in range(n_queries)
            ],
            elapsed_us=elapsed,
            retries=retries,
            unsearched_shards=list(unsearched),
            deadline_expired=deadline_expired,
            routed=routed,
            unrouted_shards=list(unrouted),
            images_pruned=max(per_query_pruned) if per_query_pruned else 0,
            cascade_pruned=max(per_query_cascade) if per_query_cascade else 0,
            corpus_epoch=dict(epochs_seen),
        )

    def search_many(
        self,
        query_descriptor_list: list[np.ndarray],
        nprobe: int | None = None,
        recall_target: float | None = None,
    ) -> list[ClusterSearchResult]:
        """Query-batched scatter-gather; per-query view of
        :meth:`search_group` (kept for API compatibility)."""
        return self.search_group(
            query_descriptor_list, nprobe=nprobe, recall_target=recall_target
        ).results

    # ------------------------------------------------------------------
    # health / failover
    # ------------------------------------------------------------------
    def heartbeats(self) -> list[dict]:
        """Poll every container's health-check endpoint."""
        return [node.heartbeat() for node in self.nodes]

    def health_report(self) -> dict:
        """Cluster-level health rollup for the ``GET /health`` route."""
        beats = self.heartbeats()
        states = [beat["state"] for beat in beats]
        if all(state == NodeHealth.DOWN.value for state in states):
            status = "down"
        elif all(state == NodeHealth.UP.value for state in states):
            status = "up"
        else:
            status = "degraded"
        return {
            "status": status,
            "nodes": beats,
            "references": self.n_references,
            "min_shard_fraction": self.min_shard_fraction,
            "shards": {
                shard_id: [n.node_id for n in group.nodes]
                for shard_id, group in self.groups.items()
            },
        }

    def repair(self) -> list[str]:
        """Fail over every ``DOWN`` node.

        A dead replica whose group has siblings is simply detached —
        the surviving replicas already hold the shard at the current
        epoch, so failover costs nothing and no search ever degrades.
        A shard's *last* replica is decommissioned through the
        :meth:`remove_node` machinery: its placement entries are
        re-hydrated from the KV store onto the survivors (references
        whose blobs were lost are dropped).  The last node is never
        removed — an all-down cluster has nowhere to fail over to.
        Returns the ids of the nodes failed over.  Draining replicas
        whose grace elapsed are detached on the way.
        """
        self.poll_lifecycle()
        repaired: list[str] = []
        for node in list(self.nodes):
            if node.health.state is not NodeHealth.DOWN:
                continue
            group = self._group_of_node(node.node_id)
            if group is not None and len(group.nodes) > 1:
                self._detach_replica(group, node)
                repaired.append(node.node_id)
                _FAILOVERS.inc()
                continue
            if len(self.nodes) <= 1:
                break
            self.remove_node(node.node_id)
            repaired.append(node.node_id)
            _FAILOVERS.inc()
        return repaired

    # ------------------------------------------------------------------
    @property
    def n_references(self) -> int:
        return len(self._placement)

    def capacity_images(self) -> int:
        """Cluster capacity (Sec. 8: 10.8 M at m=384 FP16, 14 nodes)."""
        return sum(node.capacity_images() for node in self.nodes)

    def aggregate_throughput_images_per_s(self) -> float:
        """Sum of per-node steady-state search throughputs."""
        total = 0.0
        for node in self.nodes:
            total += node.engine.stats.mean_throughput_images_per_s
        return total

    def stats(self) -> dict:
        """Operational rollup for ``GET /stats``.

        ``schema_version`` is bumped whenever the payload shape
        changes so dashboards can gate on it.  The ``cache`` and
        ``fault_tolerance`` sections read the process-wide metrics
        registry (they aggregate over every engine in the process —
        one cluster per process in any real deployment).
        """
        return {
            "schema_version": STATS_SCHEMA_VERSION,
            "nodes": [node.stats() for node in self.nodes],
            "references": self.n_references,
            "capacity_images": self.capacity_images(),
            "kv_keys": self.store.dbsize(),
            "cache": {
                "adds_total": _REG.value("repro_cache_adds_total"),
                "demotions_total": _REG.value("repro_cache_demotions_total"),
                "evictions_total": _REG.value("repro_cache_evictions_total"),
                "sweep_hits_total": _REG.value(
                    "repro_cache_sweep_lookups_total", result="hit"
                ),
                "sweep_misses_total": _REG.value(
                    "repro_cache_sweep_lookups_total", result="miss"
                ),
            },
            "fault_tolerance": {
                "searches_single_total": _REG.value(
                    "repro_cluster_searches_total", kind="single"
                ),
                "searches_group_total": _REG.value(
                    "repro_cluster_searches_total", kind="group"
                ),
                "retries_total": _REG.value("repro_cluster_retries_total"),
                "unsearched_shards_total": _REG.value(
                    "repro_cluster_unsearched_shards_total"
                ),
                "partial_results_total": _REG.value(
                    "repro_cluster_partial_results_total"
                ),
                "failovers_total": _REG.value("repro_cluster_failovers_total"),
            },
            "routing": {
                "enabled": self.router_policy is not None,
                "kind": self.router_policy.kind if self.router_policy else None,
                "nominations_routed_total": sum(
                    _REG.value(
                        "repro_router_nominations_total", kind=k, outcome="routed"
                    )
                    for k in ("ivf", "lsh")
                ),
                "nominations_exhaustive_total": sum(
                    _REG.value(
                        "repro_router_nominations_total", kind=k, outcome="exhaustive"
                    )
                    for k in ("ivf", "lsh")
                ),
                "candidate_hits_total": _REG.value(
                    "repro_router_candidate_hit_total", result="hit"
                ),
                "candidate_misses_total": _REG.value(
                    "repro_router_candidate_hit_total", result="miss"
                ),
                "unrouted_shards_total": _REG.value(
                    "repro_cluster_unrouted_shards_total"
                ),
                "images_pruned_total": _REG.value(
                    "repro_engine_images_pruned_total"
                ),
            },
            "cascade": {
                "enabled": any(
                    node.engine.kernel.has_prefilter for node in self.nodes
                ),
                "images_pruned_total": _REG.value(
                    "repro_engine_cascade_pruned_total"
                ),
            },
            "enrollment": {
                "enrolls_total": _REG.value(
                    "repro_enrollment_ops_total", op="enroll"
                ),
                "updates_total": _REG.value(
                    "repro_enrollment_ops_total", op="update"
                ),
                "deletes_total": _REG.value(
                    "repro_enrollment_ops_total", op="delete"
                ),
                "tombstones_live": len(self.tombstones),
                "epochs": self.epochs.snapshot(),
                "cache_removals_total": _REG.value("repro_cache_removals_total"),
                "router_refresh_incremental_total": sum(
                    _REG.value(
                        "repro_router_refresh_total", kind=k, mode="incremental"
                    )
                    for k in ("ivf", "lsh")
                ),
                "router_refresh_rebuild_total": sum(
                    _REG.value(
                        "repro_router_refresh_total", kind=k, mode="rebuild"
                    )
                    for k in ("ivf", "lsh")
                ),
            },
            "overload": {
                "shed_reject_new_total": _REG.value(
                    "repro_serving_shed_total", reason="reject-new"
                ),
                "shed_drop_oldest_total": _REG.value(
                    "repro_serving_shed_total", reason="drop-oldest"
                ),
                "shed_deadline_expired_total": _REG.value(
                    "repro_serving_shed_total", reason="deadline-expired"
                ),
                "deadline_expired_sweeps_total": _REG.value(
                    "repro_engine_deadline_expired_total"
                ),
                "deadline_skipped_shards_total": _REG.value(
                    "repro_cluster_deadline_skipped_shards_total"
                ),
                "breaker_skipped_total": _REG.value(
                    "repro_cluster_breaker_skipped_total"
                ),
                "breaker_opened_total": _REG.value(
                    "repro_breaker_transitions_total", to="open"
                ),
                "brownout_shards_skipped_total": _REG.value(
                    "repro_cluster_brownout_shards_skipped_total"
                ),
                "rate_limited_total": _REG.value("repro_web_rate_limited_total"),
                "brownout_requests_total": _REG.value("repro_web_brownout_total"),
            },
            "slo": self._slo_stats(),
            "elastic": self._elastic_stats(),
        }

    def elastic_report(self) -> dict:
        """Fleet elasticity rollup for the ``GET /elastic`` route: the
        stats v8 ``elastic`` block on its own, without the cost of the
        full :meth:`stats` payload."""
        return self._elastic_stats()

    def _elastic_stats(self) -> dict:
        """The schema-v8 ``"elastic"`` block: replica topology, replica
        lifecycle counts, fleet cost, and scaling-event counters.  The
        ``autoscaler`` side reports ``enabled: False`` until one is
        attached, so the key is always present and dashboards can gate
        on it."""
        states = [node.replica_state for node in self.nodes]
        block: dict = {
            "replication": {
                shard_id: len(group.nodes)
                for shard_id, group in self.groups.items()
            },
            "replicas_total": len(self.nodes),
            "shards_total": len(self.groups),
            "warming": sum(1 for s in states if s is ReplicaState.WARMING),
            "draining": sum(1 for s in states if s is ReplicaState.DRAINING),
            "node_seconds": self.node_seconds(),
            "scale_events": {
                action: _REG.value(
                    "repro_cluster_scale_events_total", action=action
                )
                for action in (
                    "add_shard", "remove_shard", "add_replica", "remove_replica"
                )
            },
            "replica_retries_total": _REG.value(
                "repro_cluster_replica_retries_total"
            ),
            "autoscaler": {"enabled": False},
        }
        if self.autoscaler is not None:
            block["autoscaler"] = {"enabled": True, **self.autoscaler.to_dict()}
        return block

    @staticmethod
    def _slo_stats() -> dict:
        """The schema-v7 ``"slo"`` block: state of the installed
        time-series recorder and SLO engine (both optional — the block
        reports ``enabled: False`` sides when nothing is installed, so
        the key is always present and dashboards can gate on it)."""
        recorder = _ts_recorder()
        engine = _slo_engine()
        block: dict = {
            "recorder": {"enabled": False},
            "engine": {"enabled": False},
            "transitions": {},
        }
        if recorder is not None:
            block["recorder"] = {
                "enabled": True,
                "interval_us": recorder.interval_us,
                "retention": recorder.retention,
                "now_us": recorder.now_us,
                "n_samples": len(recorder),
            }
        if engine is not None:
            block["engine"] = {"enabled": True, **engine.to_dict()}
            block["transitions"] = {
                state: sum(
                    _REG.value(
                        "repro_slo_transitions_total",
                        policy=policy.name, to=state,
                    )
                    for policy in engine.policies
                )
                for state in ("ok", "warning", "critical")
            }
        return block
