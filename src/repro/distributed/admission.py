"""Web-tier admission control: token-bucket rate limiting + brownout.

The serving tier's bounded queue (:mod:`repro.serving.batcher`)
protects the *batcher*; this module protects the *web tier* itself.
Under offered load beyond cluster capacity an unprotected front end
exhibits the classic metastable collapse — queues grow without bound,
every request waits behind all of them, and goodput (requests that
complete within their deadline) falls toward zero even though the
GPUs are saturated doing work nobody will use.  The token bucket caps
the *admitted* rate at (roughly) capacity, and the brownout band
degrades gracefully before rejecting: when tokens run low the tier
serves searches over a reduced shard fraction
(:func:`repro.obs.brownout_scope` → partial results) instead of
turning requests away outright.

Everything runs on simulated time — the bucket refills from the
caller-supplied ``now_us``, never a wall clock — so admission
decisions replay deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AdmissionPolicy", "TokenBucket"]


@dataclass(frozen=True)
class AdmissionPolicy:
    """Knobs for the web tier's admission layer.

    ``rate_per_s`` is the sustained admitted-search rate (0 disables
    rate limiting entirely); ``burst`` the bucket depth.  When the
    bucket's fill fraction drops below ``brownout_tokens`` the tier
    enters brownout and serves searches over
    ``brownout_shard_fraction`` of the populated shards (floored by
    the cluster's ``min_shard_fraction``) instead of rejecting.
    """

    rate_per_s: float = 0.0
    burst: int = 16
    brownout_tokens: float = 0.25
    brownout_shard_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.rate_per_s < 0:
            raise ValueError(f"rate_per_s must be >= 0, got {self.rate_per_s}")
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")
        if not 0.0 <= self.brownout_tokens <= 1.0:
            raise ValueError(
                f"brownout_tokens must be in [0, 1], got {self.brownout_tokens}"
            )
        if not 0.0 < self.brownout_shard_fraction <= 1.0:
            raise ValueError(
                "brownout_shard_fraction must be in (0, 1], "
                f"got {self.brownout_shard_fraction}"
            )


class TokenBucket:
    """Deterministic token bucket on the simulated clock.

    Starts full.  ``try_take`` refills by ``rate_per_s`` against the
    supplied ``now_us`` before drawing; simulated time never runs
    backwards here even if callers hand in out-of-order clocks (the
    web tier's per-worker clocks are only loosely ordered).
    """

    def __init__(self, rate_per_s: float, burst: int) -> None:
        if rate_per_s <= 0:
            raise ValueError(f"rate_per_s must be > 0, got {rate_per_s}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate_per_s = float(rate_per_s)
        self.burst = int(burst)
        self._tokens = float(burst)
        self._refilled_at_us = 0.0

    def _refill(self, now_us: float) -> None:
        if now_us > self._refilled_at_us:
            elapsed_s = (now_us - self._refilled_at_us) * 1e-6
            self._tokens = min(self.burst, self._tokens + elapsed_s * self.rate_per_s)
            self._refilled_at_us = now_us

    def try_take(self, now_us: float) -> bool:
        """Admit one request at simulated time ``now_us``?"""
        self._refill(now_us)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def retry_after_us(self, now_us: float) -> float:
        """Simulated wait until one whole token will be available."""
        self._refill(now_us)
        deficit = 1.0 - self._tokens
        if deficit <= 0:
            return 0.0
        return deficit / self.rate_per_s * 1e6

    @property
    def fraction(self) -> float:
        """Current fill fraction of the bucket in [0, 1]."""
        return self._tokens / self.burst
