"""Redis-like in-memory key-value store.

Sec. 8 runs one Redis container as the durable store of serialized
feature matrices; GPU containers hydrate their caches from it.  This
in-process stand-in implements the subset the system uses — string
keys with binary values, hashes, counters, key scans — with the same
semantics (bytes in, bytes out).
"""

from __future__ import annotations

import fnmatch
import threading

__all__ = ["KVStore"]


class KVStore:
    """A small, thread-safe Redis workalike."""

    def __init__(self) -> None:
        self._strings: dict[str, bytes] = {}
        self._hashes: dict[str, dict[str, bytes]] = {}
        #: per string-key write counter; version 0 means "never written"
        #: (or deleted), so a fresh create acks as version 1.
        self._versions: dict[str, int] = {}
        self._lock = threading.RLock()
        self._read_fault = None

    def set_read_fault(self, hook) -> None:
        """Install a blob-loss hook for fault injection.

        ``hook(key) -> bool`` is consulted on every :meth:`get`; a true
        return makes the key read back as missing (the stored bytes are
        untouched, mirroring an unreachable/corrupt Redis entry rather
        than a deletion).  Pass ``None`` to clear.
        """
        self._read_fault = hook

    # -- string commands ------------------------------------------------
    def set(self, key: str, value: bytes) -> None:
        if not isinstance(value, (bytes, bytearray)):
            raise TypeError("values must be bytes")
        with self._lock:
            name = str(key)
            self._strings[name] = bytes(value)
            self._versions[name] = self._versions.get(name, 0) + 1

    def get(self, key: str) -> bytes | None:
        if self._read_fault is not None and self._read_fault(str(key)):
            return None
        with self._lock:
            return self._strings.get(str(key))

    def delete(self, *keys: str) -> int:
        removed = 0
        with self._lock:
            for key in keys:
                name = str(key)
                if self._strings.pop(name, None) is not None:
                    removed += 1
                    # versions stay monotonic across delete/re-create so
                    # a stale writer can never CAS onto a recycled key
                    self._versions[name] = self._versions.get(name, 0) + 1
                if self._hashes.pop(name, None) is not None:
                    removed += 1
        return removed

    def exists(self, key: str) -> bool:
        with self._lock:
            return str(key) in self._strings or str(key) in self._hashes

    def keys(self, pattern: str = "*") -> list[str]:
        with self._lock:
            names = set(self._strings) | set(self._hashes)
        return sorted(name for name in names if fnmatch.fnmatchcase(name, pattern))

    def incr(self, key: str, amount: int = 1) -> int:
        with self._lock:
            name = str(key)
            current = int(self._strings.get(name, b"0"))
            current += int(amount)
            self._strings[name] = str(current).encode()
            self._versions[name] = self._versions.get(name, 0) + 1
            return current

    # -- versioned writes -------------------------------------------------
    def version(self, key: str) -> int:
        """Current write-version of a string key.

        Monotonic per key across overwrites *and* deletes; ``0`` means
        the key has never been written.  A missing-but-once-written key
        keeps its counter so stale writers cannot CAS onto a recycled
        key (no ABA).
        """
        with self._lock:
            return self._versions.get(str(key), 0)

    def set_versioned(self, key: str, value: bytes, expected_version: int) -> int:
        """Write ``value`` iff the key is still at ``expected_version``.

        Returns the new version on success; raises
        :class:`~repro.errors.KVConflictError` when another writer got
        there first.  ``expected_version=0`` means "create only" — the
        key must never have been written.
        """
        from ..errors import KVConflictError

        if not isinstance(value, (bytes, bytearray)):
            raise TypeError("values must be bytes")
        with self._lock:
            name = str(key)
            actual = self._versions.get(name, 0)
            if actual != int(expected_version):
                raise KVConflictError(name, int(expected_version), actual)
            self._strings[name] = bytes(value)
            self._versions[name] = actual + 1
            return actual + 1

    def cas(self, key: str, expected: bytes | None, new: bytes) -> bool:
        """Compare-and-set on the stored *bytes*: write ``new`` iff the
        current value equals ``expected`` (``None`` = key absent).
        Returns whether the swap happened."""
        if not isinstance(new, (bytes, bytearray)):
            raise TypeError("values must be bytes")
        if expected is not None and not isinstance(expected, (bytes, bytearray)):
            raise TypeError("expected must be bytes or None")
        with self._lock:
            name = str(key)
            current = self._strings.get(name)
            want = None if expected is None else bytes(expected)
            if current != want:
                return False
            self._strings[name] = bytes(new)
            self._versions[name] = self._versions.get(name, 0) + 1
            return True

    # -- hash commands ---------------------------------------------------
    def hset(self, key: str, field: str, value: bytes) -> None:
        if not isinstance(value, (bytes, bytearray)):
            raise TypeError("values must be bytes")
        with self._lock:
            self._hashes.setdefault(str(key), {})[str(field)] = bytes(value)

    def hget(self, key: str, field: str) -> bytes | None:
        with self._lock:
            return self._hashes.get(str(key), {}).get(str(field))

    def hdel(self, key: str, *fields: str) -> int:
        removed = 0
        with self._lock:
            bucket = self._hashes.get(str(key))
            if bucket is None:
                return 0
            for field in fields:
                if bucket.pop(str(field), None) is not None:
                    removed += 1
            if not bucket:
                del self._hashes[str(key)]
        return removed

    def hgetall(self, key: str) -> dict[str, bytes]:
        with self._lock:
            return dict(self._hashes.get(str(key), {}))

    def hlen(self, key: str) -> int:
        with self._lock:
            return len(self._hashes.get(str(key), {}))

    # -- admin -------------------------------------------------------------
    def flushall(self) -> None:
        with self._lock:
            self._strings.clear()
            self._hashes.clear()
            self._versions.clear()

    def dbsize(self) -> int:
        with self._lock:
            return len(self._strings) + len(self._hashes)

    # -- persistence (RDB-style snapshot) -----------------------------------
    def dump(self) -> bytes:
        """Snapshot the whole store to bytes (Redis RDB analogue).

        Format: magic, then length-prefixed entries — kind byte (0 =
        string, 1 = hash field), key, [field,] value.
        """
        from .serialization import encode_varint

        def blob(data: bytes) -> bytes:
            return encode_varint(len(data)) + data

        out = [b"KVS1"]
        with self._lock:
            for key, value in sorted(self._strings.items()):
                out.append(b"\x00" + blob(key.encode()) + blob(value))
            for key, bucket in sorted(self._hashes.items()):
                for field, value in sorted(bucket.items()):
                    out.append(b"\x01" + blob(key.encode()) + blob(field.encode()) + blob(value))
        return b"".join(out)

    def restore(self, data: bytes) -> int:
        """Replace the store's contents with a :meth:`dump` snapshot;
        returns the number of entries loaded."""
        from ..errors import SerializationError
        from .serialization import decode_varint

        if not data.startswith(b"KVS1"):
            raise SerializationError("not a KV snapshot (bad magic)")

        def read_blob(pos: int) -> tuple[bytes, int]:
            length, pos = decode_varint(data, pos)
            if pos + length > len(data):
                raise SerializationError("truncated KV snapshot")
            return data[pos : pos + length], pos + length

        strings: dict[str, bytes] = {}
        hashes: dict[str, dict[str, bytes]] = {}
        pos = 4
        count = 0
        while pos < len(data):
            kind = data[pos]
            pos += 1
            key, pos = read_blob(pos)
            if kind == 0:
                value, pos = read_blob(pos)
                strings[key.decode()] = value
            elif kind == 1:
                field, pos = read_blob(pos)
                value, pos = read_blob(pos)
                hashes.setdefault(key.decode(), {})[field.decode()] = value
            else:
                raise SerializationError(f"unknown snapshot entry kind {kind}")
            count += 1
        with self._lock:
            self._strings = strings
            self._hashes = hashes
            # snapshots predate the version ledger: every restored key
            # re-enters at version 1, as if freshly created
            self._versions = {name: 1 for name in strings}
        return count
