"""Deterministic fault injection for the distributed tier (chaos testing).

The paper's headline number comes from a 14-container scatter-gather
system; at that scale node failure is routine, so the fault-tolerance
machinery needs a way to *cause* failures on demand.  A
:class:`FaultInjector` wraps :class:`~repro.distributed.node.SearchNode`
operations and KV-store reads with four fault kinds:

* **node crash** — the container dies; every later operation raises
  :class:`~repro.errors.NodeDownError` until it is revived (or failed
  over and decommissioned);
* **transient error** — one request fails retryably
  (:class:`~repro.errors.TransientNodeError`);
* **slow node** — the operation succeeds but its simulated latency is
  multiplied (feeds the cluster's per-attempt timeout);
* **KV blob loss** — a ``feature:*`` record reads back as missing, so
  failover must degrade by dropping the reference.

Determinism: every draw is a :func:`hashlib.blake2b` digest of
``(seed, node_id, per-node op counter, fault kind)`` — no global RNG,
no ordering sensitivity.  Re-running an identical workload with an
identically-seeded injector produces byte-identical fault sequences,
which is what lets the chaos suite assert "run twice, same outcome".
"""

from __future__ import annotations

import hashlib
from collections import defaultdict
from dataclasses import dataclass

from ..errors import NodeDownError, TransientNodeError

__all__ = ["FaultSpec", "FaultInjector"]


@dataclass(frozen=True)
class FaultSpec:
    """Per-operation fault probabilities (all default to "no faults")."""

    crash_rate: float = 0.0
    transient_rate: float = 0.0
    slow_rate: float = 0.0
    slow_multiplier: float = 8.0
    blob_loss_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("crash_rate", "transient_rate", "slow_rate", "blob_loss_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.slow_multiplier < 1.0:
            raise ValueError("slow_multiplier must be >= 1")


def _draw(seed: int, *parts: object) -> float:
    """A reproducible uniform draw in [0, 1) keyed on ``parts``."""
    token = ":".join(str(p) for p in (seed, *parts)).encode()
    digest = hashlib.blake2b(token, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2**64


class FaultInjector:
    """Seedable chaos monkey for :class:`SearchNode` + KV operations.

    Attach with :meth:`install` (or pass ``fault_injector=`` to
    :class:`~repro.distributed.cluster.DistributedSearchSystem`); nodes
    then consult :meth:`on_node_op` on every search, and the KV store
    consults :meth:`on_kv_get` on every read.
    """

    def __init__(self, spec: FaultSpec | None = None, seed: int = 0) -> None:
        self.spec = spec or FaultSpec()
        self.seed = int(seed)
        self._op_counts: dict[str, int] = defaultdict(int)
        self._crashed: set[str] = set()
        self._crash_at: dict[str, int] = {}
        self._lost_keys: set[str] = set()
        #: observability counters for the chaos suite / benchmark.
        self.injected = {"crash": 0, "transient": 0, "slow": 0, "blob_loss": 0}

    # ------------------------------------------------------------------
    # explicit, scripted faults (fully deterministic scenarios)
    # ------------------------------------------------------------------
    def crash(self, *node_ids: str) -> None:
        """Kill containers now; they stay dead until :meth:`revive`."""
        for node_id in node_ids:
            self._crashed.add(str(node_id))

    def crash_after(self, node_id: str, n_ops: int) -> None:
        """Schedule a crash on the ``n_ops``-th subsequent operation."""
        if n_ops < 1:
            raise ValueError("n_ops must be >= 1")
        self._crash_at[str(node_id)] = self._op_counts[str(node_id)] + int(n_ops)

    def revive(self, *node_ids: str) -> None:
        for node_id in node_ids:
            self._crashed.discard(str(node_id))
            self._crash_at.pop(str(node_id), None)

    def lose_blob(self, *keys: str) -> None:
        """Mark KV keys as lost (reads return "missing")."""
        self._lost_keys.update(str(k) for k in keys)

    def is_crashed(self, node_id: str) -> bool:
        return str(node_id) in self._crashed

    @property
    def crashed_nodes(self) -> list[str]:
        return sorted(self._crashed)

    # ------------------------------------------------------------------
    # hooks consulted by the wrapped components
    # ------------------------------------------------------------------
    def on_node_op(self, node_id: str) -> float:
        """Gate one node operation.

        Returns the latency multiplier to apply (1.0 = full speed).
        Raises :class:`NodeDownError` for crashed nodes and
        :class:`TransientNodeError` for injected retryable failures.
        """
        node_id = str(node_id)
        self._op_counts[node_id] += 1
        count = self._op_counts[node_id]
        if node_id in self._crash_at and count >= self._crash_at[node_id]:
            self._crashed.add(node_id)
            del self._crash_at[node_id]
        if node_id in self._crashed:
            self.injected["crash"] += 1
            raise NodeDownError(node_id, "injected crash")
        spec = self.spec
        if spec.crash_rate and _draw(self.seed, node_id, count, "crash") < spec.crash_rate:
            self._crashed.add(node_id)
            self.injected["crash"] += 1
            raise NodeDownError(node_id, "injected crash")
        if spec.transient_rate and _draw(self.seed, node_id, count, "transient") < spec.transient_rate:
            self.injected["transient"] += 1
            raise TransientNodeError(node_id, "injected transient fault")
        if spec.slow_rate and _draw(self.seed, node_id, count, "slow") < spec.slow_rate:
            self.injected["slow"] += 1
            return float(spec.slow_multiplier)
        return 1.0

    def on_kv_get(self, key: str) -> bool:
        """True if the blob under ``key`` should read back as lost."""
        key = str(key)
        if key in self._lost_keys:
            self.injected["blob_loss"] += 1
            return True
        if self.spec.blob_loss_rate and _draw(self.seed, "kv", key, "loss") < self.spec.blob_loss_rate:
            # loss is permanent: a lost blob never reappears on re-read
            self._lost_keys.add(key)
            self.injected["blob_loss"] += 1
            return True
        return False

    # ------------------------------------------------------------------
    def install(self, system) -> None:
        """Wire this injector into a cluster: every node (current and
        future) and the KV store's ``feature:*`` reads."""
        system.fault_injector = self
        for node in system.nodes:
            node.fault_injector = self
        system.store.set_read_fault(
            lambda key: key.startswith("feature:") and self.on_kv_get(key)
        )
