"""Shard-placement policies for the distributed system.

The paper allocates reference matrices "equally to those 14 GPU
containers" — round-robin, which balances perfectly but reshuffles
almost everything when the node count changes.  Production clusters
prefer **consistent hashing**: each node owns many virtual points on a
hash ring, keys map to the next point clockwise, and adding/removing a
node only moves ~1/N of the keys.  Both policies implement one
protocol so :class:`DistributedSearchSystem` can be configured with
either.
"""

from __future__ import annotations

import bisect
import hashlib

__all__ = ["PlacementPolicy", "RoundRobinPlacement", "ConsistentHashPlacement"]


class PlacementPolicy:
    """Maps reference ids to node ids over a mutable node set."""

    def add_node(self, node_id: str) -> None:
        raise NotImplementedError

    def remove_node(self, node_id: str) -> None:
        raise NotImplementedError

    def place(self, ref_id: str) -> str:
        """Node that should own ``ref_id`` (stable until the node set
        changes)."""
        raise NotImplementedError

    def peek(self, ref_id: str) -> str:
        """Node :meth:`place` would pick for ``ref_id``, without
        consuming any placement state — callers that must inspect the
        target before committing (gate-before-mutate enrollment) peek
        first, then place."""
        return self.place(ref_id)


class RoundRobinPlacement(PlacementPolicy):
    """The paper's equal-allocation policy (stateful cursor)."""

    def __init__(self, node_ids: list[str] | None = None) -> None:
        self._nodes: list[str] = list(node_ids or [])
        self._cursor = 0

    def add_node(self, node_id: str) -> None:
        if node_id in self._nodes:
            raise ValueError(f"duplicate node {node_id!r}")
        self._nodes.append(node_id)

    def remove_node(self, node_id: str) -> None:
        self._nodes.remove(node_id)
        if self._nodes:
            self._cursor %= len(self._nodes)

    def place(self, ref_id: str) -> str:
        if not self._nodes:
            raise ValueError("no nodes registered")
        node = self._nodes[self._cursor]
        self._cursor = (self._cursor + 1) % len(self._nodes)
        return node

    def peek(self, ref_id: str) -> str:
        # the cursor does not advance: the next place() returns this
        if not self._nodes:
            raise ValueError("no nodes registered")
        return self._nodes[self._cursor]


def _ring_hash(value: str) -> int:
    """Stable 64-bit hash (Python's ``hash`` is salted per process)."""
    return int.from_bytes(hashlib.blake2b(value.encode(), digest_size=8).digest(), "big")


class ConsistentHashPlacement(PlacementPolicy):
    """Hash-ring placement with virtual nodes.

    ``vnodes`` points per physical node smooth the load distribution;
    128 keeps the max/min shard ratio within ~20 % for tens of nodes.
    """

    def __init__(self, node_ids: list[str] | None = None, vnodes: int = 128) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = int(vnodes)
        self._ring: list[tuple[int, str]] = []
        self._keys: list[int] = []
        self._nodes: set[str] = set()
        for node_id in node_ids or []:
            self.add_node(node_id)

    def add_node(self, node_id: str) -> None:
        if node_id in self._nodes:
            raise ValueError(f"duplicate node {node_id!r}")
        self._nodes.add(node_id)
        for v in range(self.vnodes):
            point = (_ring_hash(f"{node_id}#{v}"), node_id)
            index = bisect.bisect(self._keys, point[0])
            self._ring.insert(index, point)
            self._keys.insert(index, point[0])

    def remove_node(self, node_id: str) -> None:
        if node_id not in self._nodes:
            raise KeyError(node_id)
        self._nodes.discard(node_id)
        keep = [(h, n) for h, n in self._ring if n != node_id]
        self._ring = keep
        self._keys = [h for h, _ in keep]

    def place(self, ref_id: str) -> str:
        if not self._ring:
            raise ValueError("no nodes registered")
        h = _ring_hash(str(ref_id))
        index = bisect.bisect(self._keys, h)
        if index == len(self._ring):
            index = 0
        return self._ring[index][1]

    def shard_counts(self, ref_ids: list[str]) -> dict[str, int]:
        """Histogram of where ``ref_ids`` would land (load inspection)."""
        counts = {node: 0 for node in self._nodes}
        for ref_id in ref_ids:
            counts[self.place(ref_id)] += 1
        return counts
