"""Node health model for the distributed tier.

Production similarity-search deployments (and the paper's 14-container
cluster, Sec. 8) must answer two questions about every GPU container:
*is it serving?* and *should the router keep sending it traffic?*  This
module models the answer as a three-state machine per node:

``UP``
    Serving normally.
``DEGRADED``
    Recent transient failures or timeouts; still searched, but the
    cluster is one bad streak away from failing it over.
``DOWN``
    Crashed or declared dead after too many consecutive failures.  The
    web tier skips the node and the cluster fails it over (its shard is
    re-hydrated from the KV store onto the survivors).

Transitions are driven by the scatter-gather path recording successes
and failures; ``DOWN`` is sticky until an explicit :meth:`revive`
(a failed-over node never silently rejoins).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["NodeHealth", "HealthPolicy", "HealthTracker"]


class NodeHealth(Enum):
    """Serving state of one GPU container."""

    UP = "up"
    DEGRADED = "degraded"
    DOWN = "down"


@dataclass(frozen=True)
class HealthPolicy:
    """Thresholds for failure-driven state transitions.

    ``degraded_after`` consecutive failures mark a node ``DEGRADED``;
    ``down_after`` consecutive failures declare it ``DOWN``.  One
    success resets the streak and (unless the node is ``DOWN``)
    restores ``UP``.
    """

    degraded_after: int = 1
    down_after: int = 3

    def __post_init__(self) -> None:
        if self.degraded_after < 1:
            raise ValueError("degraded_after must be >= 1")
        if self.down_after < self.degraded_after:
            raise ValueError("down_after must be >= degraded_after")


class HealthTracker:
    """Per-node failure accounting + the state machine above."""

    def __init__(self, policy: HealthPolicy | None = None) -> None:
        self.policy = policy or HealthPolicy()
        self.state = NodeHealth.UP
        self.consecutive_failures = 0
        self.total_failures = 0
        self.total_successes = 0
        self.heartbeats = 0

    # ------------------------------------------------------------------
    def record_success(self) -> NodeHealth:
        self.total_successes += 1
        self.consecutive_failures = 0
        if self.state is not NodeHealth.DOWN:
            self.state = NodeHealth.UP
        return self.state

    def record_failure(self) -> NodeHealth:
        """A transient failure or timeout; may escalate the state."""
        self.total_failures += 1
        self.consecutive_failures += 1
        if self.state is NodeHealth.DOWN:
            return self.state
        if self.consecutive_failures >= self.policy.down_after:
            self.state = NodeHealth.DOWN
        elif self.consecutive_failures >= self.policy.degraded_after:
            self.state = NodeHealth.DEGRADED
        return self.state

    def record_crash(self) -> NodeHealth:
        """A hard failure (container died): straight to ``DOWN``."""
        self.total_failures += 1
        self.consecutive_failures += 1
        self.state = NodeHealth.DOWN
        return self.state

    def revive(self) -> NodeHealth:
        """Operator/failover action: clear the streak, return to ``UP``."""
        self.state = NodeHealth.UP
        self.consecutive_failures = 0
        return self.state

    # ------------------------------------------------------------------
    @property
    def is_serving(self) -> bool:
        return self.state is not NodeHealth.DOWN

    def snapshot(self) -> dict:
        return {
            "state": self.state.value,
            "consecutive_failures": self.consecutive_failures,
            "total_failures": self.total_failures,
            "total_successes": self.total_successes,
            "heartbeats": self.heartbeats,
        }
