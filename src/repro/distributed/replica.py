"""Replica groups: one shard served by 1..R GPU containers.

The paper's distributed tier (Sec. 8) places each reference shard on
exactly one container, so losing a node immediately degrades results to
``partial`` until KV re-hydration completes.  Production similarity-
search fleets scale *reads* by replicating hot shards instead (FAISS-
style sharded search replicates the index across GPUs); this module
models that: a :class:`ReplicaGroup` is the set of containers that all
hold the same shard's reference set, and the cluster's scatter-gather
spreads read load across the group's healthy replicas, transparently
retrying on a sibling before the shard is ever reported unsearched.

Replica lifecycle (the graceful part of elasticity)::

    WARMING ──ready_at_us──▶ SERVING ──drain──▶ DRAINING ──grace──▶ detached

* A **warming** replica has already hydrated its hybrid cache from the
  KV store, but does not take read traffic until its readiness gate
  passes (``ready_at_us`` on the simulated clock — cache warm-up is not
  free).  It *does* observe corpus mutations, so it is consistent the
  moment it becomes ready.
* A **serving** replica takes reads and mutations.
* A **draining** replica takes no *new* reads but finishes in-flight
  work and keeps observing mutations; after ``DRAIN_GRACE_US`` of
  simulated time it is detached.  Nothing is dropped on scale-down.

Mutations (enroll/update/delete) propagate to **every** attached
replica regardless of state, so all replicas of a group advance the
same index-epoch sequence and a search answered by any replica reports
the same ``corpus_epoch`` — the PR 7 tombstone-consistency contract now
holds across replicas, not just across failover replays.
"""

from __future__ import annotations

from enum import Enum
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .node import SearchNode

__all__ = [
    "ReplicaGroup",
    "ReplicaState",
    "DRAIN_GRACE_US",
    "WARMUP_BASE_US",
    "WARMUP_US_PER_REF",
]

#: simulated time a draining replica keeps running to finish in-flight
#: work before it is detached (it takes no new reads in the meantime).
DRAIN_GRACE_US = 2_000.0

#: fixed simulated cost of bringing a fresh replica online (container
#: start, KV connection, engine init) before per-reference cache warm-up.
WARMUP_BASE_US = 5_000.0

#: simulated per-reference cache warm-up cost (KV read + deserialise +
#: preprocess + H2D staging of one reference matrix).
WARMUP_US_PER_REF = 200.0


class ReplicaState(Enum):
    """Lifecycle state of one replica within its group."""

    WARMING = "warming"
    SERVING = "serving"
    DRAINING = "draining"


class ReplicaGroup:
    """The containers jointly serving one shard.

    ``shard_id`` is the stable logical shard name (minted from the
    founding primary's node id — with replication factor 1 the group
    degenerates to exactly the pre-replica system, bit for bit).  The
    group owns a deterministic read cursor so successive reads rotate
    across serving replicas (load spreading without randomness).

    Health is deliberately *not* filtered here: a DOWN replica is still
    offered to the gather, whose attempt fails fast through the node's
    fault gate and falls over to the next sibling — that keeps the
    breaker/health bookkeeping identical to the single-replica system
    and lets :meth:`DistributedSearchSystem.repair` observe the death.
    """

    def __init__(self, shard_id: str, nodes: list[SearchNode] | None = None) -> None:
        self.shard_id = str(shard_id)
        self.nodes: list[SearchNode] = list(nodes or [])
        self._cursor = 0
        for node in self.nodes:
            node.shard_id = self.shard_id

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReplicaGroup({self.shard_id!r}, "
            f"replicas={[n.node_id for n in self.nodes]})"
        )

    # -- membership -----------------------------------------------------
    @property
    def primary(self) -> SearchNode:
        if not self.nodes:
            raise ValueError(f"replica group {self.shard_id!r} is empty")
        return self.nodes[0]

    def attach(self, node: SearchNode) -> None:
        node.shard_id = self.shard_id
        self.nodes.append(node)

    def detach(self, node_id: str) -> SearchNode:
        for i, node in enumerate(self.nodes):
            if node.node_id == node_id:
                return self.nodes.pop(i)
        raise KeyError(node_id)

    def get(self, node_id: str) -> SearchNode | None:
        for node in self.nodes:
            if node.node_id == node_id:
                return node
        return None

    # -- epochs ---------------------------------------------------------
    @property
    def epoch(self) -> int:
        """The shard's index epoch: the high-water mark across replicas
        (replicas advance in lockstep; a replica that missed a mutation
        because it was crashed is behind and gets detached by repair)."""
        return max((node.epoch for node in self.nodes), default=0)

    @property
    def n_references(self) -> int:
        """The shard's reference count as served (max across replicas —
        a warming replica may still be catching up)."""
        return max((node.n_references for node in self.nodes), default=0)

    # -- lifecycle ------------------------------------------------------
    def promote_ready(self, now_us: float | None) -> None:
        """Promote warming replicas whose readiness gate has passed.

        The gate is twofold: the simulated warm-up time has elapsed
        (``now_us`` is ``None`` when no clock is installed — then time
        is not modelled and warm-up is instantaneous) *and* the replica
        has caught up to the shard's reference set and epoch, so it can
        never serve a stale view.
        """
        target_epoch = self.epoch
        target_refs = self.n_references
        for node in self.nodes:
            if node.replica_state is not ReplicaState.WARMING:
                continue
            if now_us is not None and now_us < node.ready_at_us:
                continue
            if node.n_references < target_refs or node.epoch < target_epoch:
                continue
            node.replica_state = ReplicaState.SERVING

    def drained(self, now_us: float | None) -> list[SearchNode]:
        """Draining replicas whose grace period has elapsed (ready to be
        detached).  With no clock installed the grace is immediate."""
        out = []
        for node in self.nodes:
            if node.replica_state is not ReplicaState.DRAINING:
                continue
            if now_us is None or now_us >= node.draining_since_us + DRAIN_GRACE_US:
                out.append(node)
        return out

    def active(self) -> list[SearchNode]:
        """Replicas counted toward the desired size (serving + warming;
        draining replicas are already on their way out)."""
        return [
            n for n in self.nodes
            if n.replica_state is not ReplicaState.DRAINING
        ]

    # -- read selection -------------------------------------------------
    def readers(self, now_us: float | None = None) -> list[SearchNode]:
        """Replicas eligible for reads right now, in deterministic
        rotated order (the cursor advances one slot per call so
        successive reads spread across the group).

        Eligible = state ``SERVING``; warming replicas are promoted
        first if their gate passed, draining replicas take no new
        reads.  The caller tries them in order: the first is the chosen
        reader, the rest are failover siblings.
        """
        self.promote_ready(now_us)
        eligible = [
            n for n in self.nodes if n.replica_state is ReplicaState.SERVING
        ]
        if not eligible:
            return []
        start = self._cursor % len(eligible)
        self._cursor += 1
        return eligible[start:] + eligible[:start]

    def snapshot(self) -> dict:
        """Replica-group rollup for stats/health payloads."""
        return {
            "shard_id": self.shard_id,
            "replicas": [
                {
                    "node_id": n.node_id,
                    "state": n.replica_state.value,
                    "health": n.health.state.value,
                    "epoch": n.epoch,
                    "references": n.n_references,
                }
                for n in self.nodes
            ],
            "epoch": self.epoch,
            "references": self.n_references,
        }
