"""Distributed texture search substrate (Sec. 8, Fig. 6): protobuf-like
serialization, a Redis-like KV store, GPU container nodes, the sharded
scatter-gather cluster, the RESTful API layer, and the fault-tolerance
layer (health states, deterministic fault injection, retries and
partial-result degradation), plus the overload-protection layer
(admission control, circuit breakers, brownout) and the online
enrollment layer (per-shard index epochs, tombstones,
read-your-writes acks), and the elastic tier (replica groups with
graceful warm-up/drain lifecycles and the SLO-driven autoscaler)."""

from .admission import AdmissionPolicy, TokenBucket
from .autoscaler import Autoscaler, AutoscalerPolicy, ScalingEvent
from .breaker import BreakerPolicy, BreakerState, CircuitBreaker
from .enrollment import DeletionAck, EnrollmentAck, EpochRegistry, TombstoneLog
from .cluster import (
    ClusterGroupResult,
    ClusterSearchResult,
    DistributedSearchSystem,
    RetryPolicy,
    WEB_TIER_OVERHEAD_US,
)
from .faults import FaultInjector, FaultSpec
from .health import HealthPolicy, HealthTracker, NodeHealth
from .kvstore import KVStore
from .loadbalancer import DispatchRecord, WebTier
from .node import NodeConfig, SearchNode
from .replica import ReplicaGroup, ReplicaState
from .rest import Request, Response, Router, build_api
from ..routing import RouterPolicy
from .sharding import ConsistentHashPlacement, PlacementPolicy, RoundRobinPlacement
from .serialization import (
    FeatureRecord,
    decode_varint,
    deserialize_record,
    encode_varint,
    serialize_record,
)

__all__ = [
    "AdmissionPolicy",
    "Autoscaler",
    "AutoscalerPolicy",
    "BreakerPolicy",
    "BreakerState",
    "CircuitBreaker",
    "ClusterGroupResult",
    "ClusterSearchResult",
    "DeletionAck",
    "EnrollmentAck",
    "EpochRegistry",
    "TombstoneLog",
    "TokenBucket",
    "ConsistentHashPlacement",
    "DispatchRecord",
    "FaultInjector",
    "FaultSpec",
    "HealthPolicy",
    "HealthTracker",
    "NodeHealth",
    "PlacementPolicy",
    "RetryPolicy",
    "RoundRobinPlacement",
    "RouterPolicy",
    "DistributedSearchSystem",
    "FeatureRecord",
    "KVStore",
    "WebTier",
    "NodeConfig",
    "ReplicaGroup",
    "ReplicaState",
    "Request",
    "Response",
    "Router",
    "ScalingEvent",
    "SearchNode",
    "WEB_TIER_OVERHEAD_US",
    "build_api",
    "decode_varint",
    "deserialize_record",
    "encode_varint",
    "serialize_record",
]
