"""Distributed texture search substrate (Sec. 8, Fig. 6): protobuf-like
serialization, a Redis-like KV store, GPU container nodes, the sharded
scatter-gather cluster, and the RESTful API layer."""

from .cluster import ClusterSearchResult, DistributedSearchSystem, WEB_TIER_OVERHEAD_US
from .kvstore import KVStore
from .loadbalancer import DispatchRecord, WebTier
from .node import NodeConfig, SearchNode
from .rest import Request, Response, Router, build_api
from .sharding import ConsistentHashPlacement, PlacementPolicy, RoundRobinPlacement
from .serialization import (
    FeatureRecord,
    decode_varint,
    deserialize_record,
    encode_varint,
    serialize_record,
)

__all__ = [
    "ClusterSearchResult",
    "ConsistentHashPlacement",
    "DispatchRecord",
    "PlacementPolicy",
    "RoundRobinPlacement",
    "DistributedSearchSystem",
    "FeatureRecord",
    "KVStore",
    "WebTier",
    "NodeConfig",
    "Request",
    "Response",
    "Router",
    "SearchNode",
    "WEB_TIER_OVERHEAD_US",
    "build_api",
    "decode_varint",
    "deserialize_record",
    "encode_varint",
    "serialize_record",
]
