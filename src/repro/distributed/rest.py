"""RESTful API layer (Sec. 8: "We can add, delete, update, and search a
texture image through the provided APIs").

An in-process HTTP-like router: requests carry a method, a path and a
JSON-style dict body; responses carry a status code and a dict body.
Routes::

    POST   /textures            {"id": ..., "descriptors": [[...], ...]}
    GET    /textures/{id}
    PUT    /textures/{id}       {"descriptors": [[...], ...]}
    DELETE /textures/{id}
    POST   /enroll              {"id": ..., "descriptors": [[...], ...]}
    DELETE /reference/{id}
    POST   /search              {"descriptors": [[...], ...], "top": k,
                                 "nprobe": p?, "recall_target": r?,
                                 "budget_us": t}   # optional deadline
    POST   /search/batch        {"queries": [[[...], ...], ...], "top": k,
                                 "budget_us": t}
    GET    /stats
    GET    /health
    GET    /elastic
    GET    /metrics
    GET    /metrics/history     {"names": [...]?, "since_us": t?, "limit": n?}

``POST /enroll`` and ``DELETE /reference/{id}`` are the *online*
mutation path: responses carry the shard's new index ``epoch`` (the
read-your-writes handle — search responses echo a ``corpus_epoch``
map to compare against), a crashed target shard answers 503 without
mutating anything, and deletes are idempotent (a tombstone is written
even for unknown ids so stale blobs can never resurrect).

Descriptor payloads are ``(d, count)`` nested lists (what a JSON body
would carry).  No sockets are involved — the web tier of the paper's
Fig. 6 is reproduced as a deterministic, testable dispatch layer.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..errors import (
    DegradedClusterError,
    NodeDownError,
    RestError,
    TransientNodeError,
)
from ..obs import deadline_scope
from .cluster import DistributedSearchSystem

__all__ = ["Request", "Response", "Router", "build_api"]

_ID_PATTERN = re.compile(r"^[A-Za-z0-9_.:-]{1,128}$")

#: upper bound on fused query-group size accepted by ``/search/batch``
#: (the serving tier's batcher never exceeds its own ``max_batch``).
MAX_GROUP_SIZE = 64


@dataclass
class Request:
    method: str
    path: str
    body: dict = field(default_factory=dict)


@dataclass
class Response:
    status: int
    body: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class Router:
    """Method + path-template dispatch (``{param}`` segments)."""

    def __init__(self) -> None:
        self._routes: list[tuple[str, re.Pattern, Callable]] = []

    def route(self, method: str, template: str):
        pattern = re.compile(
            "^" + re.sub(r"\{(\w+)\}", r"(?P<\1>[^/]+)", template) + "$"
        )

        def decorator(fn: Callable) -> Callable:
            self._routes.append((method.upper(), pattern, fn))
            return fn

        return decorator

    def handle(self, request: Request) -> Response:
        matched_path = False
        for method, pattern, fn in self._routes:
            match = pattern.match(request.path)
            if not match:
                continue
            matched_path = True
            if method != request.method.upper():
                continue
            try:
                return fn(request, **match.groupdict())
            except RestError as exc:
                return Response(exc.status, {"error": str(exc)})
        if matched_path:
            return Response(405, {"error": f"method {request.method} not allowed"})
        return Response(404, {"error": f"no route for {request.path}"})


def _parse_budget(body: dict) -> float | None:
    """Optional per-request deadline budget (simulated µs) from the body."""
    raw = body.get("budget_us")
    if raw is None:
        return None
    try:
        budget_us = float(raw)
    except (TypeError, ValueError) as exc:
        raise RestError(400, f"'budget_us' must be a number, got {raw!r}") from exc
    if budget_us <= 0:
        raise RestError(400, f"'budget_us' must be > 0, got {budget_us}")
    return budget_us


def _parse_routing(body: dict) -> tuple[int | None, float | None]:
    """Optional per-request routing knobs (``nprobe``, ``recall_target``)
    from the body; both pass through to the cluster's routing tier and
    are ignored when no router is configured."""
    nprobe = body.get("nprobe")
    if nprobe is not None:
        try:
            nprobe = int(nprobe)
        except (TypeError, ValueError) as exc:
            raise RestError(400, f"'nprobe' must be an integer, got {nprobe!r}") from exc
        if nprobe < 1:
            raise RestError(400, f"'nprobe' must be >= 1, got {nprobe}")
    recall_target = body.get("recall_target")
    if recall_target is not None:
        try:
            recall_target = float(recall_target)
        except (TypeError, ValueError) as exc:
            raise RestError(
                400, f"'recall_target' must be a number, got {recall_target!r}"
            ) from exc
        if not 0.0 < recall_target <= 1.0:
            raise RestError(
                400, f"'recall_target' must be in (0, 1], got {recall_target}"
            )
    return nprobe, recall_target


def _parse_descriptors(body: dict, d_expected: int) -> np.ndarray:
    raw = body.get("descriptors")
    if raw is None:
        raise RestError(400, "missing 'descriptors'")
    try:
        matrix = np.asarray(raw, dtype=np.float32)
    except (TypeError, ValueError) as exc:
        raise RestError(400, f"malformed descriptors: {exc}") from exc
    if matrix.ndim != 2 or matrix.shape[0] != d_expected:
        raise RestError(
            400,
            f"descriptors must be ({d_expected}, count), got {list(matrix.shape)}",
        )
    if not np.all(np.isfinite(matrix)):
        raise RestError(400, "descriptors contain non-finite values")
    return matrix


def _check_id(ref_id: str) -> str:
    if not _ID_PATTERN.match(ref_id):
        raise RestError(400, f"invalid texture id {ref_id!r}")
    return ref_id


def build_api(system: DistributedSearchSystem) -> Router:
    """Wire the Sec. 8 API routes onto a cluster."""
    router = Router()
    d = system.engine_config.d

    @router.route("POST", "/textures")
    def add_texture(request: Request) -> Response:
        ref_id = _check_id(str(request.body.get("id", "")))
        matrix = _parse_descriptors(request.body, d)
        existed = system.has(ref_id)
        node_id = system.add(ref_id, matrix)
        return Response(
            200 if existed else 201,
            {
                "id": ref_id, "node": node_id, "updated": existed,
                "epoch": system.epochs.get(node_id),
            },
        )

    @router.route("POST", "/enroll")
    def enroll(request: Request) -> Response:
        """Online enrollment: like ``POST /textures`` but through the
        epoched mutation path — the response's ``epoch`` is the
        read-your-writes handle, and a crashed/flaky target shard
        answers 503 (retryable) with nothing mutated."""
        ref_id = _check_id(str(request.body.get("id", "")))
        matrix = _parse_descriptors(request.body, d)
        try:
            ack = system.enroll(ref_id, matrix)
        except (NodeDownError, TransientNodeError) as exc:
            raise RestError(503, f"enrollment unavailable: {exc}") from exc
        return Response(
            200 if ack.updated else 201,
            {
                "id": ack.ref_id,
                "node": ack.node_id,
                "epoch": ack.epoch,
                "updated": ack.updated,
            },
        )

    @router.route("DELETE", "/reference/{ref_id}")
    def delete_reference(request: Request, ref_id: str) -> Response:
        """Online deletion; idempotent — deleting an unknown id still
        writes the tombstone and answers 200 with ``deleted: false``."""
        ref_id = _check_id(ref_id)
        ack = system.delete(ref_id)
        return Response(
            200,
            {
                "id": ack.ref_id,
                "node": ack.node_id,
                "epoch": ack.epoch,
                "deleted": ack.deleted,
            },
        )

    @router.route("GET", "/textures/{ref_id}")
    def get_texture(request: Request, ref_id: str) -> Response:
        ref_id = _check_id(ref_id)
        if not system.has(ref_id):
            raise RestError(404, f"texture {ref_id!r} not found")
        blob = system.get_record_bytes(ref_id)
        return Response(
            200,
            {"id": ref_id, "stored_bytes": 0 if blob is None else len(blob)},
        )

    @router.route("PUT", "/textures/{ref_id}")
    def update_texture(request: Request, ref_id: str) -> Response:
        ref_id = _check_id(ref_id)
        if not system.has(ref_id):
            raise RestError(404, f"texture {ref_id!r} not found")
        matrix = _parse_descriptors(request.body, d)
        node_id = system.add(ref_id, matrix)
        return Response(
            200,
            {
                "id": ref_id, "node": node_id, "updated": True,
                "epoch": system.epochs.get(node_id),
            },
        )

    @router.route("DELETE", "/textures/{ref_id}")
    def delete_texture(request: Request, ref_id: str) -> Response:
        ref_id = _check_id(ref_id)
        if not system.has(ref_id):
            raise RestError(404, f"texture {ref_id!r} not found")
        ack = system.delete(ref_id)
        return Response(
            200,
            {"id": ref_id, "deleted": ack.deleted, "epoch": ack.epoch},
        )

    @router.route("POST", "/search")
    def search(request: Request) -> Response:
        matrix = _parse_descriptors(request.body, d)
        top = int(request.body.get("top", 1))
        if not (1 <= top <= 100):
            raise RestError(400, "'top' must be in [1, 100]")
        budget_us = _parse_budget(request.body)
        nprobe, recall_target = _parse_routing(request.body)
        try:
            if budget_us is not None:
                with deadline_scope(budget_us):
                    result = system.search(
                        matrix, nprobe=nprobe, recall_target=recall_target
                    )
            else:
                result = system.search(
                    matrix, nprobe=nprobe, recall_target=recall_target
                )
        except DegradedClusterError as exc:
            raise RestError(503, str(exc)) from exc
        return Response(
            200,
            {
                "results": [
                    {"id": m.reference_id, "score": m.score, "good_matches": m.good_matches}
                    for m in result.top(top)
                ],
                "images_searched": result.images_searched,
                "elapsed_us": result.elapsed_us,
                "throughput_images_per_s": result.throughput_images_per_s,
                "partial": result.partial,
                "unsearched_shards": list(result.unsearched_shards),
                "deadline_expired": result.deadline_expired,
                "routed": result.routed,
                "unrouted_shards": list(result.unrouted_shards),
                "images_pruned": result.images_pruned,
                "cascade_pruned": result.cascade_pruned,
                "corpus_epoch": dict(result.corpus_epoch),
            },
        )

    @router.route("POST", "/search/batch")
    def search_batch(request: Request) -> Response:
        """Fused query-group search: one cluster sweep answers every
        query in the body.  Per-query partial-result metadata
        (``partial``, ``unsearched_shards``) is preserved in each
        query's entry — a shard dying mid-group flags every member."""
        raw_queries = request.body.get("queries")
        if not isinstance(raw_queries, (list, tuple)) or not raw_queries:
            raise RestError(400, "missing or empty 'queries' list")
        if len(raw_queries) > MAX_GROUP_SIZE:
            raise RestError(
                400, f"at most {MAX_GROUP_SIZE} queries per batch, got {len(raw_queries)}"
            )
        top = int(request.body.get("top", 1))
        if not (1 <= top <= 100):
            raise RestError(400, "'top' must be in [1, 100]")
        budget_us = _parse_budget(request.body)
        nprobe, recall_target = _parse_routing(request.body)
        matrices = [
            _parse_descriptors({"descriptors": q}, d) for q in raw_queries
        ]
        try:
            if budget_us is not None:
                with deadline_scope(budget_us):
                    group = system.search_group(
                        matrices, nprobe=nprobe, recall_target=recall_target
                    )
            else:
                group = system.search_group(
                    matrices, nprobe=nprobe, recall_target=recall_target
                )
        except DegradedClusterError as exc:
            raise RestError(503, str(exc)) from exc
        return Response(
            200,
            {
                "group_size": group.group_size,
                "elapsed_us": group.elapsed_us,
                "retries": group.retries,
                "partial": group.partial,
                "unsearched_shards": list(group.unsearched_shards),
                "deadline_expired": group.deadline_expired,
                "routed": group.routed,
                "unrouted_shards": list(group.unrouted_shards),
                "corpus_epoch": dict(group.corpus_epoch),
                "queries": [
                    {
                        "results": [
                            {
                                "id": m.reference_id,
                                "score": m.score,
                                "good_matches": m.good_matches,
                            }
                            for m in result.top(top)
                        ],
                        "images_searched": result.images_searched,
                        "elapsed_us": result.elapsed_us,
                        "partial": result.partial,
                        "unsearched_shards": list(result.unsearched_shards),
                        "retries": result.retries,
                        "deadline_expired": result.deadline_expired,
                        "images_pruned": result.images_pruned,
                        "cascade_pruned": result.cascade_pruned,
                        "corpus_epoch": dict(result.corpus_epoch),
                    }
                    for result in group.results
                ],
            },
        )

    @router.route("GET", "/stats")
    def stats(request: Request) -> Response:
        return Response(200, system.stats())

    @router.route("GET", "/elastic")
    def elastic(request: Request) -> Response:
        """Replica topology, lifecycle counts, fleet cost (node-seconds)
        and autoscaler state — the stats v8 ``elastic`` block alone, so
        a control plane can poll it cheaply."""
        return Response(200, system.elastic_report())

    @router.route("GET", "/metrics")
    def metrics(request: Request) -> Response:
        """Prometheus text exposition of the process-wide registry."""
        from ..obs import default_registry

        return Response(
            200,
            {
                "content_type": "text/plain; version=0.0.4",
                "text": default_registry().to_prometheus(),
            },
        )

    @router.route("GET", "/metrics/history")
    def metrics_history(request: Request) -> Response:
        """Time-series sample history from the installed
        :class:`~repro.obs.timeseries.TimeSeriesRecorder`.  Optional
        body keys: ``names`` (list of metric families), ``since_us``
        (drop older samples), ``limit`` (keep only the newest N).
        Answers ``enabled: false`` with no recorder installed — history
        is opt-in telemetry, not an error."""
        from ..obs import installed_recorder

        recorder = installed_recorder()
        if recorder is None:
            return Response(200, {"enabled": False, "samples": []})
        names = request.body.get("names")
        if names is not None:
            if not isinstance(names, (list, tuple)) or not all(
                isinstance(n, str) for n in names
            ):
                raise RestError(400, "'names' must be a list of metric names")
        since_us = request.body.get("since_us")
        if since_us is not None:
            try:
                since_us = float(since_us)
            except (TypeError, ValueError) as exc:
                raise RestError(
                    400, f"'since_us' must be a number, got {since_us!r}"
                ) from exc
        limit = request.body.get("limit")
        if limit is not None:
            try:
                limit = int(limit)
            except (TypeError, ValueError) as exc:
                raise RestError(
                    400, f"'limit' must be an integer, got {limit!r}"
                ) from exc
            if limit < 0:
                raise RestError(400, f"'limit' must be >= 0, got {limit}")
        return Response(
            200,
            {
                "enabled": True,
                **recorder.history(names=names, since_us=since_us, limit=limit),
            },
        )

    @router.route("GET", "/health")
    def health(request: Request) -> Response:
        """Cluster health rollup; 503 once nothing can serve."""
        report = system.health_report()
        return Response(200 if report["status"] != "down" else 503, report)

    return router
