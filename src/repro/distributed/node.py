"""One GPU container of the distributed system (Fig. 6).

A node owns one simulated GPU card, one search engine with a hybrid
cache (Sec. 8: 4 GB of the 16 GB card reserved for intermediates, the
remaining 12 GB + 64 GB host memory caching reference matrices = 76 GB
per container), and hydrates itself from the shared KV store.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.config import EngineConfig
from ..core.engine import TextureSearchEngine
from ..core.results import SearchResult
from ..errors import NodeDownError, TransientNodeError
from ..gpusim.device import DeviceSpec, TESLA_P100
from ..gpusim.engine_model import GPUDevice
from ..obs import default_tracer
from .breaker import BreakerPolicy, CircuitBreaker
from .health import HealthPolicy, HealthTracker, NodeHealth
from .kvstore import KVStore
from .replica import ReplicaState
from .serialization import FeatureRecord, deserialize_record

__all__ = ["NodeConfig", "SearchNode"]

_TRACER = default_tracer()

GIB = 1024**3


@dataclass(frozen=True)
class NodeConfig:
    """Per-container resources (Sec. 8 defaults)."""

    engine_reserved_bytes: int = 4 * GIB
    host_cache_bytes: int = 64 * 10**9
    pinned: bool = True


class SearchNode:
    """A GPU container: engine + cache + KV hydration."""

    def __init__(
        self,
        node_id: str,
        engine_config: EngineConfig | None = None,
        device_spec: DeviceSpec = TESLA_P100,
        node_config: NodeConfig | None = None,
        health_policy: HealthPolicy | None = None,
        backend: str | None = None,
        breaker_policy: BreakerPolicy | None = None,
    ) -> None:
        self.node_id = str(node_id)
        self.node_config = node_config or NodeConfig()
        if backend is not None:
            # construct the engine by backend name (kernel registry)
            engine_config = (engine_config or EngineConfig()).with_updates(backend=backend)
        device = GPUDevice(device_spec, reserved_bytes=self.node_config.engine_reserved_bytes)
        self.engine = TextureSearchEngine(
            config=engine_config,
            device=device,
            host_cache_bytes=self.node_config.host_cache_bytes,
            pinned=self.node_config.pinned,
        )
        self.health = HealthTracker(health_policy)
        #: per-node circuit breaker (opt-in: ``None`` keeps the
        #: pre-breaker behaviour of attempting every serving node).
        self.breaker = CircuitBreaker(breaker_policy) if breaker_policy is not None else None
        #: optional :class:`~repro.distributed.faults.FaultInjector`
        #: consulted on every search-path operation.
        self.fault_injector = None
        #: monotonic index epoch of this shard's reference set; every
        #: corpus mutation (enroll/update/delete) advances it.  The
        #: cluster seeds it from the durable
        #: :class:`~repro.distributed.enrollment.EpochRegistry` so a
        #: replacement node continues the sequence instead of
        #: restarting from zero.
        self.epoch = 0
        #: logical shard this container replicates; until a
        #: :class:`~repro.distributed.replica.ReplicaGroup` adopts the
        #: node it is its own (single-replica) shard.
        self.shard_id = self.node_id
        #: replica lifecycle (see :mod:`repro.distributed.replica`); a
        #: standalone node serves immediately, exactly the pre-replica
        #: behaviour.
        self.replica_state = ReplicaState.SERVING
        #: simulated instant this replica's cache warm-up completes
        #: (readiness gate for WARMING replicas).
        self.ready_at_us = 0.0
        #: simulated instant draining began (DRAINING replicas detach
        #: after the grace period).
        self.draining_since_us = 0.0

    # ------------------------------------------------------------------
    # fault gating
    # ------------------------------------------------------------------
    def _gate(self) -> float:
        """Admission check for one search-path operation.

        Returns the injected latency multiplier; records the health
        transition for injected crashes/transients before re-raising.
        """
        if self.health.state is NodeHealth.DOWN:
            raise NodeDownError(self.node_id)
        if self.fault_injector is None:
            return 1.0
        try:
            return self.fault_injector.on_node_op(self.node_id)
        except NodeDownError:
            self.health.record_crash()
            raise
        except TransientNodeError:
            self.health.record_failure()
            raise

    # ------------------------------------------------------------------
    def add(self, ref_id: str, descriptors: np.ndarray) -> None:
        self.engine.add_reference(ref_id, descriptors)
        self.epoch += 1

    def enroll(self, ref_id: str, descriptors: np.ndarray) -> int:
        """Online enrollment: add (or update) one reference while the
        node may be serving searches; returns the shard's new index
        epoch.  Goes through the fault gate — a crashed node cannot
        ack an enrollment."""
        self._gate()
        self.add(ref_id, descriptors)
        return self.epoch

    def add_record(self, record: FeatureRecord) -> None:
        """Enrol a deserialized KV record.

        Records store raw (pre-RootSIFT, FP32-domain) descriptors so a
        node can re-quantise to its own engine configuration; FP16
        records are dequantised first.
        """
        matrix = record.matrix.astype(np.float32)
        if record.precision == "fp16" and record.scale != 1.0:
            matrix = matrix / np.float32(record.scale)
        self.add(record.ref_id, matrix)

    def remove(self, ref_id: str) -> bool:
        removed = self.engine.remove_reference(ref_id)
        if removed:
            self.epoch += 1
        return removed

    def has(self, ref_id: str) -> bool:
        return self.engine.has_reference(ref_id)

    def search(
        self,
        query_descriptors: np.ndarray,
        candidate_ids: set[str] | frozenset[str] | None = None,
    ) -> SearchResult:
        """One shard's sweep; ``candidate_ids`` restricts it to a
        routing tier's nominees (see :meth:`TextureSearchEngine.search`)."""
        with _TRACER.span("node.search", layer="node", node=self.node_id) as span:
            multiplier = self._gate()
            result = self.engine.search(query_descriptors, candidate_ids=candidate_ids)
            if multiplier != 1.0:
                result.elapsed_us *= multiplier
            self.health.record_success()
            if span is not None:
                span.set(sim_elapsed_us=result.elapsed_us,
                         images=result.images_searched)
        return result

    def search_many(
        self,
        query_descriptor_list: list[np.ndarray],
        candidate_ids: set[str] | frozenset[str] | None = None,
    ) -> list[SearchResult]:
        """Query-batched search with the same fault/health gating as
        :meth:`search` (one gate per group — the group is one RPC)."""
        with _TRACER.span(
            "node.search_group", layer="node",
            node=self.node_id, queries=len(query_descriptor_list),
        ) as span:
            multiplier = self._gate()
            results = self.engine.search_many(
                query_descriptor_list, candidate_ids=candidate_ids
            )
            if multiplier != 1.0:
                for result in results:
                    result.elapsed_us *= multiplier
            self.health.record_success()
            if span is not None and results:
                span.set(sim_elapsed_us=max(r.elapsed_us for r in results))
        return results

    def heartbeat(self) -> dict:
        """Cheap liveness probe: health state + shard occupancy.

        Unlike a search it never raises — a crashed container's
        heartbeat *reports* ``down`` (the monitor's view) rather than
        erroring.  Explicitly-crashed injected faults are discovered
        here, so health checks can detect death without live traffic.
        """
        if (
            self.fault_injector is not None
            and self.fault_injector.is_crashed(self.node_id)
            and self.health.state is not NodeHealth.DOWN
        ):
            self.health.record_crash()
        self.health.heartbeats += 1
        beat = {
            "node_id": self.node_id,
            "shard_id": self.shard_id,
            "replica_state": self.replica_state.value,
            "references": self.n_references,
            "epoch": self.epoch,
            **self.health.snapshot(),
        }
        if self.breaker is not None:
            beat["breaker"] = self.breaker.state.value
        return beat

    def hydrate_from_store(self, store: KVStore, keys: list[str]) -> int:
        """Load serialized feature records from the KV store.

        Tombstoned references (``tombstone:<ref_id>`` keys in the same
        store) are skipped: a delete that raced this node's hydration
        must never resurrect through an older feature blob.
        """
        from .enrollment import TOMBSTONE_PREFIX

        loaded = 0
        for key in keys:
            blob = store.get(key)
            if blob is None:
                continue
            record = deserialize_record(blob)
            if store.exists(f"{TOMBSTONE_PREFIX}{record.ref_id}"):
                continue
            self.add_record(record)
            loaded += 1
        return loaded

    # ------------------------------------------------------------------
    def snapshot_to_store(self, store: KVStore, prefix: str | None = None) -> int:
        """Persist this node's *prepared* cache state to the KV store.

        Unlike the raw-descriptor records under ``feature:*``, snapshot
        records hold the engine-precision matrices, so a restart can
        skip all preprocessing (:meth:`restore_from_store`).
        """
        from .serialization import serialize_record

        prefix = prefix if prefix is not None else f"snapshot:{self.node_id}:"
        records = self.engine.export_records()
        for record in records:
            store.set(f"{prefix}{record.ref_id}", serialize_record(record))
        return len(records)

    def restore_from_store(self, store: KVStore, prefix: str | None = None) -> int:
        """Warm-restart: re-enrol a :meth:`snapshot_to_store` snapshot.

        References deleted *after* the snapshot was taken (tombstones
        in the same store) stay deleted — the snapshot replays to the
        latest epoch's view, not the snapshot's.
        """
        from .enrollment import TOMBSTONE_PREFIX

        prefix = prefix if prefix is not None else f"snapshot:{self.node_id}:"
        records = []
        for key in store.keys(f"{prefix}*"):
            blob = store.get(key)
            if blob is not None:
                record = deserialize_record(blob)
                if store.exists(f"{TOMBSTONE_PREFIX}{record.ref_id}"):
                    continue
                records.append(record)
        return self.engine.import_records(records)

    # ------------------------------------------------------------------
    @property
    def n_references(self) -> int:
        return self.engine.n_references

    def capacity_images(self) -> int:
        return self.engine.capacity_images()

    def stats(self) -> dict:
        gpu_used, host_used = self.engine.cache.used_bytes
        return {
            "node_id": self.node_id,
            "shard_id": self.shard_id,
            "replica_state": self.replica_state.value,
            "device": self.engine.device.spec.name,
            "backend": self.engine.backend,
            "health": self.health.state.value,
            "breaker": self.breaker.state.value if self.breaker else "disabled",
            "references": self.n_references,
            "epoch": self.epoch,
            "capacity_images": self.capacity_images(),
            "gpu_cache_bytes": gpu_used,
            "host_cache_bytes": host_used,
            "searches": self.engine.stats.searches,
            "mean_images_per_s": self.engine.stats.mean_throughput_images_per_s,
            "cascade_prefilter": self.engine.kernel.has_prefilter,
        }
