"""Protobuf-style wire format for feature records.

Sec. 8 stores reference feature matrices in Redis "serialized with
Google's protobuf".  Without protobuf available offline we implement
the same wire discipline from scratch: varint-encoded tags, two wire
types (varint and length-delimited), forward-compatible unknown-field
skipping, and a fixed schema for :class:`FeatureRecord`::

    field 1  varint  schema version
    field 2  bytes   reference id (utf-8)
    field 3  varint  d (descriptor dimension)
    field 4  varint  m (feature count)
    field 5  bytes   precision ("fp16"/"fp32")
    field 6  bytes   scale factor (little-endian float64)
    field 7  bytes   feature matrix, row-major (d, m), native dtype LE
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from ..errors import SerializationError

__all__ = [
    "encode_varint",
    "decode_varint",
    "FeatureRecord",
    "serialize_record",
    "deserialize_record",
]

SCHEMA_VERSION = 1
_WIRE_VARINT = 0
_WIRE_BYTES = 2
_DTYPES = {"fp16": np.dtype("<f2"), "fp32": np.dtype("<f4")}


def encode_varint(value: int) -> bytes:
    """LEB128 unsigned varint."""
    if value < 0:
        raise SerializationError("varints must be non-negative")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Returns ``(value, next_offset)``."""
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise SerializationError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise SerializationError("varint too long")


def _tag(field: int, wire: int) -> bytes:
    return encode_varint((field << 3) | wire)


def _varint_field(field: int, value: int) -> bytes:
    return _tag(field, _WIRE_VARINT) + encode_varint(value)


def _bytes_field(field: int, payload: bytes) -> bytes:
    return _tag(field, _WIRE_BYTES) + encode_varint(len(payload)) + payload


def _iter_fields(data: bytes):
    pos = 0
    while pos < len(data):
        key, pos = decode_varint(data, pos)
        field, wire = key >> 3, key & 0x7
        if wire == _WIRE_VARINT:
            value, pos = decode_varint(data, pos)
            yield field, wire, value
        elif wire == _WIRE_BYTES:
            length, pos = decode_varint(data, pos)
            if pos + length > len(data):
                raise SerializationError(f"truncated bytes field {field}")
            yield field, wire, data[pos : pos + length]
            pos += length
        else:
            raise SerializationError(f"unsupported wire type {wire} for field {field}")


@dataclass(frozen=True)
class FeatureRecord:
    """One reference image's cached representation, as stored in Redis."""

    ref_id: str
    matrix: np.ndarray  # (d, m)
    precision: str
    scale: float

    def __post_init__(self) -> None:
        if self.matrix.ndim != 2:
            raise SerializationError(f"matrix must be 2-D, got {self.matrix.shape}")
        if self.precision not in _DTYPES:
            raise SerializationError(f"unknown precision {self.precision!r}")

    @property
    def d(self) -> int:
        return self.matrix.shape[0]

    @property
    def m(self) -> int:
        return self.matrix.shape[1]


def serialize_record(record: FeatureRecord) -> bytes:
    dtype = _DTYPES[record.precision]
    matrix = np.ascontiguousarray(record.matrix, dtype=dtype)
    return b"".join(
        [
            _varint_field(1, SCHEMA_VERSION),
            _bytes_field(2, record.ref_id.encode("utf-8")),
            _varint_field(3, record.d),
            _varint_field(4, record.m),
            _bytes_field(5, record.precision.encode("ascii")),
            _bytes_field(6, struct.pack("<d", float(record.scale))),
            _bytes_field(7, matrix.tobytes()),
        ]
    )


def deserialize_record(data: bytes) -> FeatureRecord:
    fields: dict[int, object] = {}
    for field, _wire, value in _iter_fields(data):
        # Unknown fields are skipped (forward compatibility).
        if field in (1, 2, 3, 4, 5, 6, 7):
            fields[field] = value
    for required in (2, 3, 4, 5, 7):
        if required not in fields:
            raise SerializationError(f"missing required field {required}")
    version = int(fields.get(1, 0))
    if version > SCHEMA_VERSION:
        raise SerializationError(f"unsupported schema version {version}")
    precision = bytes(fields[5]).decode("ascii")
    if precision not in _DTYPES:
        raise SerializationError(f"unknown precision {precision!r}")
    d = int(fields[3])
    m = int(fields[4])
    raw = bytes(fields[7])
    dtype = _DTYPES[precision]
    expected = d * m * dtype.itemsize
    if len(raw) != expected:
        raise SerializationError(
            f"matrix payload is {len(raw)} B, expected {expected} B for ({d}, {m}) {precision}"
        )
    matrix = np.frombuffer(raw, dtype=dtype).reshape(d, m).copy()
    scale = struct.unpack("<d", bytes(fields[6]))[0] if 6 in fields else 1.0
    return FeatureRecord(
        ref_id=bytes(fields[2]).decode("utf-8"),
        matrix=matrix,
        precision=precision,
        scale=float(scale),
    )
