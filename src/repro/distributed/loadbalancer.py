"""Web tier with load balancing (Fig. 6's four RESTful containers).

The paper fronts the GPU containers with web-service containers; this
module models that tier: a :class:`WebTier` owns ``n_workers`` router
replicas, dispatches incoming requests round-robin (or to the least
loaded worker), and tracks a simulated per-worker clock so concurrent
request bursts exhibit realistic queueing — each worker serialises its
own requests while different workers proceed in parallel.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..obs import brownout_scope, default_registry, default_tracer
from .admission import AdmissionPolicy, TokenBucket
from .cluster import DistributedSearchSystem, WEB_TIER_OVERHEAD_US
from .rest import Request, Response, Router, build_api

__all__ = ["DispatchRecord", "WebTier"]

#: request parsing/serialisation cost charged per request on its worker.
REQUEST_HANDLING_US = 500.0

#: cheap early-exit cost of a rate-limited (429) response — the whole
#: point of shedding at the front door is that it costs almost nothing.
SHED_HANDLING_US = 50.0

#: routes subject to admission control (mutations and probes always pass).
_SEARCH_ROUTES = ("/search", "/search/batch")

_REG = default_registry()
_TRACER = default_tracer()
_WEB_REQUESTS = _REG.counter(
    "repro_web_requests_total",
    "Requests dispatched through the web tier, by route root and status",
    ("route", "status"),
)
_RATE_LIMITED = _REG.counter(
    "repro_web_rate_limited_total",
    "Search requests rejected with 429 by the web tier's token bucket",
)
_BROWNOUTS = _REG.counter(
    "repro_web_brownout_total",
    "Search requests served in brownout (reduced shard fraction)",
)


@dataclass
class DispatchRecord:
    """Outcome of one request through the web tier."""

    worker: int
    response: Response
    started_us: float
    completed_us: float

    @property
    def latency_us(self) -> float:
        """Time the request spent on its worker (completion − start).

        ``completed_us`` alone is an absolute worker-clock reading, so
        any queued request would report every predecessor's time too.
        """
        return self.completed_us - self.started_us


class WebTier:
    """Load-balanced front end over one search cluster."""

    def __init__(
        self,
        system: DistributedSearchSystem,
        n_workers: int = 4,
        policy: str = "round-robin",
        admission: AdmissionPolicy | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("need at least one web worker")
        if policy not in ("round-robin", "least-loaded"):
            raise ValueError(f"unknown policy {policy!r}")
        self.system = system
        self.policy = policy
        self.admission = admission
        self._bucket = (
            TokenBucket(admission.rate_per_s, admission.burst)
            if admission is not None and admission.rate_per_s > 0
            else None
        )
        self.routers: list[Router] = [build_api(system) for _ in range(n_workers)]
        self.worker_clock_us = [0.0] * n_workers
        self.requests_handled = [0] * n_workers
        self._next = 0

    @property
    def n_workers(self) -> int:
        return len(self.routers)

    def _pick_worker(self) -> int:
        if self.policy == "least-loaded":
            return int(min(range(self.n_workers), key=lambda w: self.worker_clock_us[w]))
        worker = self._next
        self._next = (self._next + 1) % self.n_workers
        return worker

    def _admit(self, request: Request, now_us: float) -> tuple[Response | None, float | None]:
        """Admission decision for one request at worker time ``now_us``.

        Returns ``(rejection, brownout_fraction)``: a 429 response when
        the token bucket is empty, else optionally the shard fraction
        to brown out to when tokens are running low.  Non-search routes
        always pass — shedding a DELETE saves nothing and loses data.
        """
        if self._bucket is None or request.path not in _SEARCH_ROUTES:
            return None, None
        if not self._bucket.try_take(now_us):
            _RATE_LIMITED.inc()
            return Response(429, {
                "error": "rate limited",
                "retry_after_us": self._bucket.retry_after_us(now_us),
            }), None
        if self._bucket.fraction < self.admission.brownout_tokens:
            _BROWNOUTS.inc()
            return None, self.admission.brownout_shard_fraction
        return None, None

    def handle(self, request: Request) -> DispatchRecord:
        """Dispatch one request; the worker's clock advances by the
        handling cost plus (for searches) the cluster's simulated time.

        With an :class:`AdmissionPolicy` configured, search routes pass
        through the token bucket first: an empty bucket sheds the
        request with a cheap 429 (``retry_after_us`` hints when to come
        back), and a nearly-empty one serves it in *brownout* — the
        cluster degrades to a fraction of its shards and answers
        ``partial=True`` rather than turning the request away.
        """
        worker = self._pick_worker()
        started = self.worker_clock_us[worker]
        rejection, brownout = self._admit(request, started)
        root = request.path.split("/", 2)[1] if "/" in request.path else request.path
        if rejection is not None:
            _WEB_REQUESTS.labels(route=root, status=rejection.status).inc()
            self.worker_clock_us[worker] = started + SHED_HANDLING_US
            self.requests_handled[worker] += 1
            return DispatchRecord(
                worker=worker,
                response=rejection,
                started_us=started,
                completed_us=self.worker_clock_us[worker],
            )
        with _TRACER.span(
            "web.request", layer="web",
            method=request.method, path=request.path, worker=worker,
        ) as span:
            if brownout is not None:
                with brownout_scope(brownout):
                    response = self.routers[worker].handle(request)
            else:
                response = self.routers[worker].handle(request)
            if span is not None:
                span.set(status=response.status)
        # route label uses only the first path segment — ids would
        # explode the label cardinality
        _WEB_REQUESTS.labels(route=root, status=response.status).inc()
        cost = REQUEST_HANDLING_US
        if request.path in ("/search", "/search/batch") and response.ok:
            # the cluster already accounts the web overhead once;
            # subtract it so the tier model doesn't double charge
            # (batch responses carry the group's shared elapsed_us)
            cost += max(0.0, response.body.get("elapsed_us", 0.0) - WEB_TIER_OVERHEAD_US)
        self.worker_clock_us[worker] = started + cost
        self.requests_handled[worker] += 1
        return DispatchRecord(
            worker=worker,
            response=response,
            started_us=started,
            completed_us=self.worker_clock_us[worker],
        )

    def handle_burst(self, requests: list[Request]) -> list[DispatchRecord]:
        """Dispatch a burst arriving simultaneously; returns records in
        submission order.  Makespan is :meth:`makespan_us` afterwards."""
        return [self.handle(request) for request in requests]

    def health(self) -> Response:
        """Health-check the cluster through a web worker (the probe is
        a real request: it is load-balanced and charged like any other)."""
        return self.handle(Request("GET", "/health")).response

    def elastic(self) -> Response:
        """Fleet elasticity rollup through a web worker
        (``GET /elastic``): replica topology, warming/draining counts,
        node-seconds cost, and autoscaler state."""
        return self.handle(Request("GET", "/elastic")).response

    def enroll(self, ref_id: str, descriptors) -> Response:
        """Online enrollment through a web worker (``POST /enroll``).

        Mutations bypass admission control — shedding an enrollment
        saves a few hundred µs and loses data — but are load-balanced
        and charged to a worker clock like any other request.
        """
        body = {
            "id": str(ref_id),
            "descriptors": np.asarray(descriptors, dtype=np.float32).tolist(),
        }
        return self.handle(Request("POST", "/enroll", body)).response

    def delete_reference(self, ref_id: str) -> Response:
        """Online deletion through a web worker
        (``DELETE /reference/{id}``); idempotent."""
        return self.handle(Request("DELETE", f"/reference/{ref_id}")).response

    def makespan_us(self) -> float:
        """Completion time of the busiest worker."""
        return max(self.worker_clock_us)

    def reset_clocks(self) -> None:
        self.worker_clock_us = [0.0] * self.n_workers
