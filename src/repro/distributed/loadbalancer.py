"""Web tier with load balancing (Fig. 6's four RESTful containers).

The paper fronts the GPU containers with web-service containers; this
module models that tier: a :class:`WebTier` owns ``n_workers`` router
replicas, dispatches incoming requests round-robin (or to the least
loaded worker), and tracks a simulated per-worker clock so concurrent
request bursts exhibit realistic queueing — each worker serialises its
own requests while different workers proceed in parallel.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs import default_registry, default_tracer
from .cluster import DistributedSearchSystem, WEB_TIER_OVERHEAD_US
from .rest import Request, Response, Router, build_api

__all__ = ["DispatchRecord", "WebTier"]

#: request parsing/serialisation cost charged per request on its worker.
REQUEST_HANDLING_US = 500.0

_TRACER = default_tracer()
_WEB_REQUESTS = default_registry().counter(
    "repro_web_requests_total",
    "Requests dispatched through the web tier, by route root and status",
    ("route", "status"),
)


@dataclass
class DispatchRecord:
    """Outcome of one request through the web tier."""

    worker: int
    response: Response
    started_us: float
    completed_us: float

    @property
    def latency_us(self) -> float:
        """Time the request spent on its worker (completion − start).

        ``completed_us`` alone is an absolute worker-clock reading, so
        any queued request would report every predecessor's time too.
        """
        return self.completed_us - self.started_us


class WebTier:
    """Load-balanced front end over one search cluster."""

    def __init__(
        self,
        system: DistributedSearchSystem,
        n_workers: int = 4,
        policy: str = "round-robin",
    ) -> None:
        if n_workers < 1:
            raise ValueError("need at least one web worker")
        if policy not in ("round-robin", "least-loaded"):
            raise ValueError(f"unknown policy {policy!r}")
        self.system = system
        self.policy = policy
        self.routers: list[Router] = [build_api(system) for _ in range(n_workers)]
        self.worker_clock_us = [0.0] * n_workers
        self.requests_handled = [0] * n_workers
        self._next = 0

    @property
    def n_workers(self) -> int:
        return len(self.routers)

    def _pick_worker(self) -> int:
        if self.policy == "least-loaded":
            return int(min(range(self.n_workers), key=lambda w: self.worker_clock_us[w]))
        worker = self._next
        self._next = (self._next + 1) % self.n_workers
        return worker

    def handle(self, request: Request) -> DispatchRecord:
        """Dispatch one request; the worker's clock advances by the
        handling cost plus (for searches) the cluster's simulated time."""
        worker = self._pick_worker()
        started = self.worker_clock_us[worker]
        with _TRACER.span(
            "web.request", layer="web",
            method=request.method, path=request.path, worker=worker,
        ) as span:
            response = self.routers[worker].handle(request)
            if span is not None:
                span.set(status=response.status)
        # route label uses only the first path segment — ids would
        # explode the label cardinality
        root = request.path.split("/", 2)[1] if "/" in request.path else request.path
        _WEB_REQUESTS.labels(route=root, status=response.status).inc()
        cost = REQUEST_HANDLING_US
        if request.path in ("/search", "/search/batch") and response.ok:
            # the cluster already accounts the web overhead once;
            # subtract it so the tier model doesn't double charge
            # (batch responses carry the group's shared elapsed_us)
            cost += max(0.0, response.body.get("elapsed_us", 0.0) - WEB_TIER_OVERHEAD_US)
        self.worker_clock_us[worker] = started + cost
        self.requests_handled[worker] += 1
        return DispatchRecord(
            worker=worker,
            response=response,
            started_us=started,
            completed_us=self.worker_clock_us[worker],
        )

    def handle_burst(self, requests: list[Request]) -> list[DispatchRecord]:
        """Dispatch a burst arriving simultaneously; returns records in
        submission order.  Makespan is :meth:`makespan_us` afterwards."""
        return [self.handle(request) for request in requests]

    def health(self) -> Response:
        """Health-check the cluster through a web worker (the probe is
        a real request: it is load-balanced and charged like any other)."""
        return self.handle(Request("GET", "/health")).response

    def makespan_us(self) -> float:
        """Completion time of the busiest worker."""
        return max(self.worker_clock_us)

    def reset_clocks(self) -> None:
        self.worker_clock_us = [0.0] * self.n_workers
