"""Geometric verification substrate: similarity/homography estimation
and RANSAC inlier counting (Fig. 2's final pipeline stage)."""

from .homography import (
    apply_homography,
    apply_similarity,
    estimate_homography,
    estimate_similarity,
)
from .ransac import RansacResult, ransac_verify

__all__ = [
    "RansacResult",
    "apply_homography",
    "apply_similarity",
    "estimate_homography",
    "estimate_similarity",
    "ransac_verify",
]
