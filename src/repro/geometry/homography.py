"""Planar transform estimation for geometric verification.

The tea-brick surfaces are planar, so matched keypoints between two
images of the same brick relate by (approximately) a similarity or
homography.  These estimators are the least-squares building blocks the
RANSAC loop (``ransac.py``) resamples.
"""

from __future__ import annotations

import numpy as np

__all__ = ["estimate_similarity", "estimate_homography", "apply_similarity", "apply_homography"]


def _check_points(src: np.ndarray, dst: np.ndarray, minimum: int) -> tuple[np.ndarray, np.ndarray]:
    src = np.asarray(src, dtype=np.float64)
    dst = np.asarray(dst, dtype=np.float64)
    if src.ndim != 2 or src.shape[1] != 2 or src.shape != dst.shape:
        raise ValueError(f"need matching (n, 2) point arrays, got {src.shape} / {dst.shape}")
    if src.shape[0] < minimum:
        raise ValueError(f"need at least {minimum} correspondences, got {src.shape[0]}")
    return src, dst


def estimate_similarity(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Least-squares similarity transform (scale + rotation + shift).

    Returns a 2x3 matrix ``M`` with ``dst ~= src @ M[:, :2].T + M[:, 2]``.
    Solved in closed form (Umeyama without reflection handling —
    texture captures never mirror).
    """
    src, dst = _check_points(src, dst, 2)
    mu_s = src.mean(axis=0)
    mu_d = dst.mean(axis=0)
    s_c = src - mu_s
    d_c = dst - mu_d
    var_s = float((s_c**2).sum())
    if var_s < 1e-12:
        raise ValueError("degenerate source points (zero variance)")
    # Complex-number form: similarity = (sum conj(s) * d) / sum |s|^2.
    s_z = s_c[:, 0] + 1j * s_c[:, 1]
    d_z = d_c[:, 0] + 1j * d_c[:, 1]
    coeff = np.vdot(s_z, d_z) / var_s  # vdot conjugates the first arg
    a, b = coeff.real, coeff.imag
    rot = np.array([[a, -b], [b, a]])
    t = mu_d - rot @ mu_s
    return np.hstack([rot, t[:, None]])


def apply_similarity(matrix: np.ndarray, points: np.ndarray) -> np.ndarray:
    points = np.asarray(points, dtype=np.float64)
    return points @ matrix[:, :2].T + matrix[:, 2]


def estimate_homography(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """DLT homography (normalised), ``dst ~ H @ src`` homogeneous."""
    src, dst = _check_points(src, dst, 4)

    def normalise(pts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        mu = pts.mean(axis=0)
        centred = pts - mu
        scale = np.sqrt(2.0) / max(np.mean(np.linalg.norm(centred, axis=1)), 1e-12)
        t = np.array([[scale, 0, -scale * mu[0]], [0, scale, -scale * mu[1]], [0, 0, 1]])
        homog = np.hstack([pts, np.ones((len(pts), 1))])
        return (t @ homog.T).T, t

    s_n, t_s = normalise(src)
    d_n, t_d = normalise(dst)
    n = len(src)
    a = np.zeros((2 * n, 9))
    a[0::2, 0:3] = s_n
    a[0::2, 6:9] = -d_n[:, 0:1] * s_n
    a[1::2, 3:6] = s_n
    a[1::2, 6:9] = -d_n[:, 1:2] * s_n
    _, _, vt = np.linalg.svd(a)
    h = vt[-1].reshape(3, 3)
    h = np.linalg.inv(t_d) @ h @ t_s
    if abs(h[2, 2]) < 1e-12:
        raise ValueError("degenerate homography")
    return h / h[2, 2]


def apply_homography(h: np.ndarray, points: np.ndarray) -> np.ndarray:
    points = np.asarray(points, dtype=np.float64)
    homog = np.hstack([points, np.ones((len(points), 1))])
    mapped = (h @ homog.T).T
    w = mapped[:, 2:3]
    w = np.where(np.abs(w) < 1e-12, 1e-12, w)
    return mapped[:, :2] / w
