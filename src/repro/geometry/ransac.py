"""RANSAC geometric verification (the final stage of Fig. 2).

Ratio-test matches still contain outliers; geometric verification fits
a planar transform to the matched keypoint pairs and counts inliers.
Only when the inlier count clears a threshold are two images declared
the same texture.  The paper excludes this stage from its *speed*
experiments ("no geometrical verification is conducted", Sec. 4.1) but
it is part of the identification pipeline, so examples and the accuracy
path use it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .homography import apply_homography, apply_similarity, estimate_homography, estimate_similarity

__all__ = ["RansacResult", "ransac_verify"]

_MIN_SAMPLES = {"similarity": 2, "homography": 4}


@dataclass
class RansacResult:
    """Outcome of one verification."""

    inliers: int
    total: int
    model: np.ndarray | None
    inlier_mask: np.ndarray

    @property
    def inlier_ratio(self) -> float:
        return self.inliers / self.total if self.total else 0.0


def ransac_verify(
    src_points: np.ndarray,
    dst_points: np.ndarray,
    model: str = "similarity",
    threshold: float = 3.0,
    iterations: int = 200,
    seed: int | None = 0,
) -> RansacResult:
    """Fit ``model`` ("similarity" or "homography") robustly.

    ``threshold`` is the inlier reprojection distance in pixels.  The
    final model is re-estimated on the best consensus set.
    """
    if model not in _MIN_SAMPLES:
        raise ValueError(f"model must be one of {sorted(_MIN_SAMPLES)}, got {model!r}")
    src = np.asarray(src_points, dtype=np.float64)
    dst = np.asarray(dst_points, dtype=np.float64)
    if src.shape != dst.shape or src.ndim != 2 or src.shape[1] != 2:
        raise ValueError(f"need matching (n, 2) arrays, got {src.shape} / {dst.shape}")
    n = src.shape[0]
    min_samples = _MIN_SAMPLES[model]
    if n < min_samples:
        return RansacResult(0, n, None, np.zeros(n, dtype=bool))

    estimate = estimate_similarity if model == "similarity" else estimate_homography
    project = apply_similarity if model == "similarity" else apply_homography

    rng = np.random.default_rng(seed)
    best_mask = np.zeros(n, dtype=bool)
    for _ in range(iterations):
        sample = rng.choice(n, size=min_samples, replace=False)
        try:
            candidate = estimate(src[sample], dst[sample])
        except (ValueError, np.linalg.LinAlgError):
            continue
        err = np.linalg.norm(project(candidate, src) - dst, axis=1)
        mask = err < threshold
        if mask.sum() > best_mask.sum():
            best_mask = mask
            if best_mask.sum() == n:
                break
    if best_mask.sum() < min_samples:
        return RansacResult(0, n, None, np.zeros(n, dtype=bool))
    refined = estimate(src[best_mask], dst[best_mask])
    err = np.linalg.norm(project(refined, src) - dst, axis=1)
    final_mask = err < threshold
    return RansacResult(int(final_mask.sum()), n, refined, final_mask)
