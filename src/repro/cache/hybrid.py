"""Hybrid GPU + host memory cache (Sec. 6, Fig. 5).

Reference feature batches enqueue into GPU memory first; once the GPU
budget is full, the *oldest* batch is swapped out to the (much larger)
host level, still FIFO.  Swap granularity is a whole batch when
batching is enabled — exactly the paper's design.  Searching iterates
every batch; host-resident batches must be streamed over PCIe, which is
what the multi-stream scheduler then overlaps with compute.

The GPU level holds real :class:`~repro.gpusim.memory.MemoryPool`
allocations so capacity interacts correctly with the engine's other
buffers; the host level is budget-accounted only (host allocations are
plain NumPy arrays we already hold).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator

from ..core.batching import ReferenceBatch
from ..errors import CacheCapacityError
from ..gpusim.engine_model import GPUDevice
from ..gpusim.memory import Allocation
from ..obs import default_registry
from .fifo import FifoCache

__all__ = ["CacheLocation", "HybridFeatureCache", "CachedBatch"]

_REG = default_registry()
_ADDS = _REG.counter(
    "repro_cache_adds_total",
    "Reference batches enqueued into the hybrid cache",
)
_DEMOTIONS = _REG.counter(
    "repro_cache_demotions_total",
    "GPU-resident batches swapped out to the host level",
)
_EVICTIONS = _REG.counter(
    "repro_cache_evictions_total",
    "Batches dropped past the host level (combined capacity exhausted)",
)
_REMOVALS = _REG.counter(
    "repro_cache_removals_total",
    "Batches explicitly removed from the hybrid cache (enrollment deletes)",
)


class CacheLocation(Enum):
    GPU = "gpu"
    HOST = "host"


@dataclass
class CachedBatch:
    """A reference batch plus where it currently lives."""

    batch: ReferenceBatch
    location: CacheLocation
    gpu_allocation: Allocation | None = None


class HybridFeatureCache:
    """Two-level FIFO cache for reference feature batches.

    Parameters
    ----------
    device:
        The GPU whose memory pool backs the first level.
    gpu_budget_bytes:
        Bytes of device memory the cache may use (the engine reserves
        the rest for intermediates).  ``None`` uses everything currently
        free on the device.
    host_budget_bytes:
        Host (pinned) memory budget — 64 GB per container in Sec. 8.
    pinned:
        Whether host memory is pinned (affects PCIe speed, Table 5).
    """

    def __init__(
        self,
        device: GPUDevice,
        gpu_budget_bytes: int | None = None,
        host_budget_bytes: int = 0,
        pinned: bool = True,
    ) -> None:
        self.device = device
        if gpu_budget_bytes is None:
            gpu_budget_bytes = device.memory.free_bytes
        if gpu_budget_bytes < 0 or host_budget_bytes < 0:
            raise ValueError("budgets must be non-negative")
        self.gpu_budget_bytes = int(gpu_budget_bytes)
        self.host_budget_bytes = int(host_budget_bytes)
        self.pinned = bool(pinned)
        self._gpu: FifoCache[int, CachedBatch] = FifoCache(self.gpu_budget_bytes, "gpu-cache")
        self._host: FifoCache[int, CachedBatch] = FifoCache(self.host_budget_bytes, "host-cache")
        self._order: list[int] = []  # global FIFO order of batch ids

    # ------------------------------------------------------------------
    def add(self, batch: ReferenceBatch) -> None:
        """Enqueue a new batch (GPU first, demoting the oldest on overflow).

        Raises :class:`CacheCapacityError` when the *combined* cache is
        full — the paper's capacity metric is exactly the point at which
        this starts happening.
        """
        nbytes = batch.nbytes
        if nbytes > self.gpu_budget_bytes:
            raise CacheCapacityError(
                f"batch of {nbytes} B exceeds the GPU cache budget "
                f"{self.gpu_budget_bytes} B"
            )
        # Re-adding an id supersedes the cached copy wherever it lives —
        # otherwise the id would appear twice in the FIFO order (batches()
        # would yield it twice and total_images double-count) and a
        # replaced GPU copy would leak its device allocation.
        if batch.batch_id in self._gpu:
            old = self._gpu.pop(batch.batch_id).value
            if old.gpu_allocation is not None:
                self.device.free(old.gpu_allocation)
        elif batch.batch_id in self._host:
            self._host.pop(batch.batch_id)
        if batch.batch_id in self._order:
            self._order.remove(batch.batch_id)
        cached = CachedBatch(batch=batch, location=CacheLocation.GPU)
        try:
            cached.gpu_allocation = self._alloc_gpu(nbytes, f"batch{batch.batch_id}")
            evicted = self._gpu.put(batch.batch_id, cached, nbytes)
            self._order.append(batch.batch_id)
            _ADDS.inc()
            for _key, entry in evicted:
                self._demote(entry.value)
        except CacheCapacityError:
            # whatever overflowed was dropped from the levels; drop its
            # id from the FIFO order too so batches() stays consistent
            self._prune_order()
            raise

    def _prune_order(self) -> None:
        self._order = [
            bid for bid in self._order if bid in self._gpu or bid in self._host
        ]

    def _alloc_gpu(self, nbytes: int, label: str) -> Allocation:
        # Free device memory can be below our budget if other engine
        # buffers grew; evict eagerly until the allocation fits.
        while not self.device.memory.fits(nbytes) and len(self._gpu):
            oldest = self._gpu.keys()[0]
            self._demote(self._gpu.pop(oldest).value)
        return self.device.alloc(nbytes, label)

    def _demote(self, cached: CachedBatch) -> None:
        """Swap a GPU-resident batch out to the host level."""
        if cached.gpu_allocation is not None:
            self.device.free(cached.gpu_allocation)
            cached.gpu_allocation = None
        cached.location = CacheLocation.HOST
        if self.host_budget_bytes <= 0:
            _EVICTIONS.inc()
            raise CacheCapacityError(
                "GPU cache full and no host cache configured "
                f"(batch {cached.batch.batch_id} has nowhere to go)"
            )
        _DEMOTIONS.inc()
        evicted = self._host.put(cached.batch.batch_id, cached, cached.batch.nbytes)
        if evicted:
            _EVICTIONS.inc(len(evicted))
            dropped = ", ".join(str(k) for k, _ in evicted)
            raise CacheCapacityError(
                f"hybrid cache exhausted: host level evicted batch(es) {dropped}"
            )

    def remove(self, batch_id: int) -> bool:
        """Drop a batch from whichever level holds it, releasing its
        capacity (device allocation freed, budgets credited, id pruned
        from the FIFO order).  Returns whether the batch was cached.

        This is the delete path of online enrollment: when every slot
        of a sealed batch is tombstoned the engine purges the whole
        batch, which keeps swap accounting batch-granular — capacity is
        only ever released in whole-batch units, never per-slot.
        """
        removed = False
        if batch_id in self._gpu:
            old = self._gpu.pop(batch_id).value
            if old.gpu_allocation is not None:
                self.device.free(old.gpu_allocation)
                old.gpu_allocation = None
            removed = True
        elif batch_id in self._host:
            self._host.pop(batch_id)
            removed = True
        if batch_id in self._order:
            self._order.remove(batch_id)
        if removed:
            _REMOVALS.inc()
        return removed

    # ------------------------------------------------------------------
    def batches(self) -> Iterator[CachedBatch]:
        """All cached batches in global FIFO order.

        Iterates a snapshot of the order taken at call time, so a sweep
        already in flight keeps a consistent view of the corpus even if
        enrollments land (or deletes purge batches) between batches —
        the sweep covers the corpus as of sweep start.
        """
        for batch_id in list(self._order):
            if batch_id in self._gpu:
                yield self._gpu.get(batch_id)
            elif batch_id in self._host:
                yield self._host.get(batch_id)

    def __len__(self) -> int:
        return len(self._gpu) + len(self._host)

    @property
    def gpu_batches(self) -> int:
        return len(self._gpu)

    @property
    def host_batches(self) -> int:
        return len(self._host)

    @property
    def total_images(self) -> int:
        return sum(c.batch.size for c in self.batches())

    @property
    def used_bytes(self) -> tuple[int, int]:
        """(gpu_bytes, host_bytes) currently used."""
        return self._gpu.used_bytes, self._host.used_bytes

    def capacity_images(self, bytes_per_image: int) -> int:
        """How many images the combined budgets could hold (the paper's
        "capacity" metric)."""
        if bytes_per_image <= 0:
            raise ValueError("bytes_per_image must be positive")
        return (self.gpu_budget_bytes + self.host_budget_bytes) // bytes_per_image
