"""Hybrid memory cache substrate: FIFO caches, the two-level GPU+host
feature cache (Fig. 5), and capacity planning arithmetic."""

from .capacity import CapacityPlan, feature_matrix_bytes, plan_capacity
from .fifo import Entry, FifoCache
from .hybrid import CachedBatch, CacheLocation, HybridFeatureCache

__all__ = [
    "CacheLocation",
    "CachedBatch",
    "CapacityPlan",
    "Entry",
    "FifoCache",
    "HybridFeatureCache",
    "feature_matrix_bytes",
    "plan_capacity",
]
