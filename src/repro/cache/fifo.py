"""Generic FIFO cache with byte-budget eviction.

Both levels of the hybrid cache (Sec. 6.1, Fig. 5) behave FIFO: new
entries enqueue at the tail; when the budget is exceeded the *oldest*
entry is evicted.  Eviction hands the evicted entry back to the caller
(the hybrid cache demotes GPU evictions into the host level).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Generic, Hashable, Iterator, TypeVar

from ..errors import CacheCapacityError

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

__all__ = ["FifoCache", "Entry"]


@dataclass
class Entry(Generic[V]):
    """A cached value and its accounted size."""

    value: V
    nbytes: int


class FifoCache(Generic[K, V]):
    """Byte-budgeted FIFO cache.

    ``put`` returns the list of evicted ``(key, entry)`` pairs, oldest
    first.  An entry larger than the whole budget raises
    :class:`CacheCapacityError`.
    """

    def __init__(self, capacity_bytes: int, name: str = "cache") -> None:
        if capacity_bytes < 0:
            raise ValueError("capacity must be non-negative")
        self.name = name
        self.capacity_bytes = int(capacity_bytes)
        self._entries: "OrderedDict[K, Entry[V]]" = OrderedDict()
        self._used = 0

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._used

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    def get(self, key: K) -> V:
        """FIFO semantics: a hit does *not* refresh recency."""
        return self._entries[key].value

    def put(self, key: K, value: V, nbytes: int) -> list[tuple[K, Entry[V]]]:
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes > self.capacity_bytes:
            raise CacheCapacityError(
                f"{self.name}: entry of {nbytes} B exceeds capacity "
                f"{self.capacity_bytes} B"
            )
        if key in self._entries:
            old = self._entries.pop(key)
            self._used -= old.nbytes
        evicted: list[tuple[K, Entry[V]]] = []
        while self._used + nbytes > self.capacity_bytes:
            old_key, old_entry = self._entries.popitem(last=False)
            self._used -= old_entry.nbytes
            evicted.append((old_key, old_entry))
        self._entries[key] = Entry(value, nbytes)
        self._used += nbytes
        return evicted

    def pop(self, key: K) -> Entry[V]:
        entry = self._entries.pop(key)
        self._used -= entry.nbytes
        return entry

    def keys(self) -> list[K]:
        """Keys in FIFO (insertion) order, oldest first."""
        return list(self._entries.keys())

    def items(self) -> Iterator[tuple[K, Entry[V]]]:
        return iter(self._entries.items())
