"""Capacity planning calculator.

The paper's "capacity" metric counts cached reference feature matrices.
This module reproduces its arithmetic: Sec. 6 (85,000 images on a bare
16 GB GPU at m=768/FP16), Fig. 1's 20x waterfall, and Sec. 8's 10.8 M
matrices across 14 containers (m=384, FP16, 76 GB hybrid per card).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpusim.kernels import dtype_bytes

__all__ = ["CapacityPlan", "plan_capacity", "feature_matrix_bytes"]

GIB = 1024**3


def feature_matrix_bytes(
    m: int,
    d: int = 128,
    precision: str = "fp16",
    with_norms: bool = False,
) -> int:
    """Bytes of one reference matrix (optionally plus its N_R vector)."""
    if m <= 0 or d <= 0:
        raise ValueError("m and d must be positive")
    per = dtype_bytes(precision)
    total = m * d * per
    if with_norms:
        total += m * per
    return total


@dataclass(frozen=True)
class CapacityPlan:
    """Result of :func:`plan_capacity`."""

    bytes_per_image: int
    gpu_cache_bytes: int
    host_cache_bytes: int
    gpu_images: int
    host_images: int

    @property
    def total_images(self) -> int:
        return self.gpu_images + self.host_images

    @property
    def total_cache_bytes(self) -> int:
        return self.gpu_cache_bytes + self.host_cache_bytes


def plan_capacity(
    m: int = 768,
    d: int = 128,
    precision: str = "fp16",
    with_norms: bool = False,
    gpu_mem_bytes: int = 16 * GIB,
    gpu_reserved_bytes: int = 0,
    host_cache_bytes: int = 0,
) -> CapacityPlan:
    """How many reference images a node configuration can cache.

    ``gpu_reserved_bytes`` models the engine's intermediate buffers
    (Sec. 8 reserves 4 GB of each 16 GB card).
    """
    if gpu_reserved_bytes > gpu_mem_bytes:
        raise ValueError("reserved exceeds GPU memory")
    per = feature_matrix_bytes(m, d, precision, with_norms)
    gpu_cache = gpu_mem_bytes - gpu_reserved_bytes
    return CapacityPlan(
        bytes_per_image=per,
        gpu_cache_bytes=gpu_cache,
        host_cache_bytes=int(host_cache_bytes),
        gpu_images=gpu_cache // per,
        host_images=int(host_cache_bytes) // per,
    )
