"""Coarse candidate routing — the first tier of two-tier retrieval.

Today every query fans out to every shard and the paper's exact
per-image 2-NN sweeps every cached reference, so cost grows linearly
with corpus and fleet size.  This module adds the small global first
tier of FAISS-style billion-scale search (Johnson et al.) and the
coarse-to-fine pruning of GPU Cascade Hashing (Xu et al.): a
:class:`CandidateRouter` maps a query to a *ranked* set of candidate
shards and per-shard candidate reference ids, and the cluster
scatter-gathers only the nominees while each engine restricts its
exact sweep to the nominated reference batches.

Both routers operate on **pooled per-image descriptors**: the ``(d,
count)`` SIFT matrix of an image is mean-pooled over the feature axis
and L2-normalised to one unit vector per image, so the global tier
holds ``n_images`` vectors instead of ``n_images * count`` — small
enough to live (conceptually) on the web tier.  Pooling averages away
per-feature noise (a perturbed query's pooled vector concentrates
near its reference's at roughly ``sigma / sqrt(count)``), which is
why tiny probe counts reach high recall in the ``routing`` bench.

Two implementations, both reusing the baseline machinery:

* :class:`IvfCandidateRouter` — IVF coarse quantisation: k-means
  (:func:`repro.baselines.cbir_ivf.kmeans`) over the pooled vectors;
  a query probes its ``nprobe`` nearest centroid lists.
* :class:`LshCandidateRouter` — LSH banding over
  :class:`repro.baselines.lsh.LshCodec` sign bits: signatures are
  split into bands and an image is nominated when enough of its bands
  collide with the query's.  ``nprobe`` relaxes the required band
  matches (the codec analogue of probing more lists).

Routing is *advisory and safe*: an empty nomination falls back to the
exhaustive path (``RouteDecision.exhaustive``), a router-disabled
cluster is bit-identical to the pre-routing system, and nominated
shards that are down degrade exactly like the exhaustive path (see
``docs/routing.md``).
"""

from __future__ import annotations

import math
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from ..baselines.cbir_ivf import kmeans
from ..baselines.lsh import LshCodec
from ..features.binarize import unpack_bits
from ..obs import default_registry, default_tracer

__all__ = [
    "CandidateRouter",
    "IvfCandidateRouter",
    "LshCandidateRouter",
    "RouteDecision",
    "RouterPolicy",
    "build_router",
    "pool_descriptors",
]

_REG = default_registry()
_TRACER = default_tracer()

#: candidate-count buckets (images nominated per query).
_CANDIDATE_BUCKETS = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
    256.0, 512.0, 1024.0, 4096.0, 16384.0,
)

_NOMINATIONS = _REG.counter(
    "repro_router_nominations_total",
    "Router nominations by implementation and outcome "
    "(routed = a proper candidate subset, exhaustive = fallback to a full sweep)",
    ("kind", "outcome"),
)
_CANDIDATES = _REG.histogram(
    "repro_router_candidates_examined",
    "Candidate reference images nominated per query (the second tier "
    "sweeps only these)",
    ("kind",),
    buckets=_CANDIDATE_BUCKETS,
)
_OVERHEAD_US = _REG.histogram(
    "repro_router_overhead_us",
    "Host wall-clock spent inside CandidateRouter.nominate (the first "
    "tier runs on the web tier, outside the simulated GPU clock)",
    ("kind",),
)
_REFRESHES = _REG.counter(
    "repro_router_refresh_total",
    "Routing-index refreshes: incremental absorb/retract of one "
    "reference vs a full rebuild of the coarse structure",
    ("kind", "mode"),
)


def pool_descriptors(descriptors: np.ndarray) -> np.ndarray:
    """``(d, count)`` descriptor matrix -> one L2-normalised ``(d,)``
    pooled vector (mean over the feature axis).

    The routing tier indexes images, not features: pooling collapses
    an image's descriptor cloud to its centroid direction, which is
    stable under the per-feature noise the 2-NN ratio test absorbs.
    """
    descriptors = np.asarray(descriptors, dtype=np.float32)
    if descriptors.ndim != 2 or descriptors.shape[1] == 0:
        raise ValueError(f"descriptors must be (d, count>0), got {descriptors.shape}")
    pooled = descriptors.mean(axis=1)
    norm = float(np.linalg.norm(pooled))
    if norm > 0.0:
        pooled = pooled / np.float32(norm)
    return pooled.astype(np.float32)


@dataclass(frozen=True)
class RouterPolicy:
    """Configuration of the coarse routing tier.

    ``kind`` selects the implementation (``"ivf"`` or ``"lsh"``).
    ``nprobe`` is the accuracy/cost knob: IVF probes that many coarse
    lists; LSH lowers its required band matches by ``nprobe - 1``
    (floored at one collision).  ``recall_target`` (when set)
    overrides ``nprobe`` through the router's calibration table — see
    :meth:`CandidateRouter.resolve_nprobe`.  Per-request overrides of
    either knob flow through the cluster/serving/web tiers.
    """

    kind: str = "ivf"
    nprobe: int = 1
    recall_target: float | None = None
    #: IVF: number of coarse k-means lists (clamped to the corpus size).
    n_lists: int = 16
    #: LSH: signature bits and bits per band.
    n_bits: int = 256
    band_bits: int = 8
    #: LSH: band collisions required at nprobe=1; each extra probe
    #: relaxes the threshold by one, flooring at the classic
    #: OR-of-bands threshold of a single collision.
    band_matches: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("ivf", "lsh"):
            raise ValueError(f"unknown router kind {self.kind!r}")
        if self.nprobe < 1:
            raise ValueError("nprobe must be >= 1")
        if self.recall_target is not None and not 0.0 < self.recall_target <= 1.0:
            raise ValueError("recall_target must be in (0, 1]")
        if self.n_lists < 1:
            raise ValueError("n_lists must be >= 1")
        if self.n_bits < 8:
            raise ValueError("n_bits must be >= 8")
        if not 1 <= self.band_bits <= self.n_bits:
            raise ValueError("band_bits must be in [1, n_bits]")
        if self.band_matches < 1:
            raise ValueError("band_matches must be >= 1")


@dataclass
class RouteDecision:
    """One query's (or query group's) first-tier nomination.

    ``shard_ids`` is ranked best-first; ``per_shard`` maps each
    nominated shard to its ranked candidate reference ids;
    ``candidate_ids`` is the global ranked candidate list.
    ``exhaustive`` marks the safety fallback: the router could not
    nominate (untrained, empty corpus, or no collisions), and the
    caller must run the full scatter-gather instead.
    """

    candidate_ids: list[str] = field(default_factory=list)
    shard_ids: list[str] = field(default_factory=list)
    per_shard: dict[str, list[str]] = field(default_factory=dict)
    nprobe_used: int = 0
    exhaustive: bool = False
    #: router mutation epoch the nomination was computed against —
    #: enrolment debugging: a decision tagged with an older epoch than
    #: the corpus means the router had not absorbed a mutation yet.
    corpus_epoch: int = 0

    @property
    def n_candidates(self) -> int:
        return len(self.candidate_ids)

    @staticmethod
    def merge(decisions: list["RouteDecision"]) -> "RouteDecision":
        """Union of per-query decisions for a fused query group.

        A group shares one fan-out, so the merged nomination is the
        union; rank order is by each candidate's best (lowest) rank
        across the group, ties broken by first appearance.  Any
        exhaustive member makes the merge exhaustive.
        """
        if not decisions:
            return RouteDecision(exhaustive=True)
        epoch = max(d.corpus_epoch for d in decisions)
        if any(d.exhaustive for d in decisions):
            return RouteDecision(
                exhaustive=True,
                nprobe_used=max(d.nprobe_used for d in decisions),
                corpus_epoch=epoch,
            )
        best_rank: dict[str, int] = {}
        seen: dict[str, int] = {}
        owner: dict[str, str] = {}
        for decision in decisions:
            for shard, refs in decision.per_shard.items():
                for ref in refs:
                    owner[ref] = shard
            for rank, ref in enumerate(decision.candidate_ids):
                if ref not in seen:
                    seen[ref] = len(seen)
                best_rank[ref] = min(best_rank.get(ref, rank), rank)
        merged = sorted(best_rank, key=lambda r: (best_rank[r], seen[r]))
        per_shard: dict[str, list[str]] = {}
        shard_ids: list[str] = []
        for ref in merged:
            shard = owner[ref]
            if shard not in per_shard:
                per_shard[shard] = []
                shard_ids.append(shard)
            per_shard[shard].append(ref)
        return RouteDecision(
            candidate_ids=merged,
            shard_ids=shard_ids,
            per_shard=per_shard,
            nprobe_used=max(d.nprobe_used for d in decisions),
            corpus_epoch=epoch,
        )


class CandidateRouter(ABC):
    """Protocol of the coarse routing tier.

    Lifecycle: :meth:`add` / :meth:`remove` / :meth:`reassign` mirror
    the cluster's placement mutations.  Once an index exists, single
    mutations refresh it *incrementally* (IVF appends to the nearest
    coarse list, LSH re-bands one signature row) instead of rebuilding
    — a full :meth:`fit` happens only on first build, on an explicit
    call, or when an implementation decides its structure degraded
    enough to compact.  Every mutation bumps :attr:`epoch`, which
    nominations carry on ``RouteDecision.corpus_epoch``.
    """

    def __init__(self, policy: RouterPolicy, d: int = 128) -> None:
        self.policy = policy
        self.d = int(d)
        #: insertion-ordered ref -> pooled (d,) vector.
        self._pooled: dict[str, np.ndarray] = {}
        #: ref -> owning shard id.
        self._shard_of: dict[str, str] = {}
        self._dirty = True
        #: monotonic mutation counter (add/remove/reassign).
        self.epoch = 0
        #: recall calibration: sorted (nprobe, measured recall) pairs
        #: from the ``routing`` bench, consulted by recall targets.
        self._calibration: list[tuple[int, float]] = []

    # -- corpus lifecycle ----------------------------------------------
    def add(self, ref_id: str, descriptors: np.ndarray, shard_id: str) -> None:
        """Enrol (or update) one reference image's pooled vector."""
        ref_id = str(ref_id)
        if ref_id in self._pooled:
            self._retract(ref_id)
        self._pooled[ref_id] = pool_descriptors(descriptors)
        self._shard_of[ref_id] = str(shard_id)
        self._absorb(ref_id)
        self.epoch += 1

    def remove(self, ref_id: str) -> bool:
        ref_id = str(ref_id)
        if ref_id not in self._pooled:
            return False
        self._retract(ref_id)
        del self._pooled[ref_id]
        del self._shard_of[ref_id]
        self.epoch += 1
        return True

    def reassign(self, ref_id: str, shard_id: str) -> None:
        """Repoint a reference to a new shard (failover re-hydration);
        the routing index itself is unchanged."""
        ref_id = str(ref_id)
        if ref_id in self._shard_of:
            self._shard_of[ref_id] = str(shard_id)
            self.epoch += 1

    # -- incremental refresh hooks --------------------------------------
    def _absorb(self, ref_id: str) -> None:
        """Fold one just-added pooled vector into the live index.

        The default marks the index dirty (full rebuild on the next
        nomination); implementations override with an O(1)-ish
        incremental insert once an index exists.
        """
        self._dirty = True

    def _retract(self, ref_id: str) -> None:
        """Drop one reference from the live index (pooled vector still
        present when called).  Default: full rebuild on next use."""
        self._dirty = True

    @property
    def n_images(self) -> int:
        return len(self._pooled)

    # -- recall calibration --------------------------------------------
    def set_calibration(self, pairs: list[tuple[int, float]]) -> None:
        """Install measured ``(nprobe, recall)`` pairs (from the
        ``routing`` bench experiment) used to resolve recall targets."""
        self._calibration = sorted(
            (max(1, int(nprobe)), float(recall)) for nprobe, recall in pairs
        )

    def resolve_nprobe(
        self, nprobe: int | None = None, recall_target: float | None = None
    ) -> int:
        """Effective probe count for one request.

        Explicit ``nprobe`` wins; else a ``recall_target`` (request- or
        policy-level) picks the smallest calibrated nprobe whose
        measured recall reaches the target.  An *uncalibrated* recall
        target degrades safely to near-exhaustive probing
        (``ceil(target * max_nprobe)``) — feed :meth:`set_calibration`
        from the routing bench to unlock small probe counts.
        """
        if nprobe is not None:
            return max(1, int(nprobe))
        target = recall_target if recall_target is not None else self.policy.recall_target
        if target is None:
            return self.policy.nprobe
        for cal_nprobe, cal_recall in self._calibration:
            if cal_recall >= target:
                return cal_nprobe
        return max(1, math.ceil(target * self.max_nprobe))

    @property
    @abstractmethod
    def max_nprobe(self) -> int:
        """The nprobe beyond which probing is exhaustive."""

    # -- nomination -----------------------------------------------------
    @abstractmethod
    def _rebuild(self) -> None:
        """(Re)build the routing index from the pooled corpus."""

    @abstractmethod
    def _nominate(self, pooled_query: np.ndarray, nprobe: int) -> list[str]:
        """Ranked candidate ref ids for one pooled query vector."""

    def fit(self) -> None:
        """Eagerly (re)build the routing index from scratch."""
        self._rebuild()
        self._dirty = False
        _REFRESHES.labels(kind=self.kind, mode="rebuild").inc()

    @property
    def kind(self) -> str:
        return self.policy.kind

    def nominate(
        self,
        query_descriptors: np.ndarray,
        nprobe: int | None = None,
        recall_target: float | None = None,
    ) -> RouteDecision:
        """Map one query descriptor matrix to a :class:`RouteDecision`.

        Overhead is measured in *host* wall-clock (the first tier is a
        web-tier structure, not simulated GPU work) and recorded in the
        ``repro_router_overhead_us`` histogram; the decision itself is
        deterministic for a given corpus, policy, and query.
        """
        started = time.perf_counter_ns()
        with _TRACER.span("router.nominate", layer="routing", kind=self.kind) as span:
            effective = self.resolve_nprobe(nprobe, recall_target)
            if self._dirty:
                self.fit()
            if not self._pooled:
                decision = RouteDecision(
                    exhaustive=True, nprobe_used=effective,
                    corpus_epoch=self.epoch,
                )
            else:
                ranked = self._nominate(pool_descriptors(query_descriptors), effective)
                if not ranked:
                    decision = RouteDecision(
                        exhaustive=True, nprobe_used=effective,
                        corpus_epoch=self.epoch,
                    )
                else:
                    per_shard: dict[str, list[str]] = {}
                    shard_ids: list[str] = []
                    for ref in ranked:
                        shard = self._shard_of[ref]
                        if shard not in per_shard:
                            per_shard[shard] = []
                            shard_ids.append(shard)
                        per_shard[shard].append(ref)
                    decision = RouteDecision(
                        candidate_ids=ranked,
                        shard_ids=shard_ids,
                        per_shard=per_shard,
                        nprobe_used=effective,
                        corpus_epoch=self.epoch,
                    )
            outcome = "exhaustive" if decision.exhaustive else "routed"
            _NOMINATIONS.labels(kind=self.kind, outcome=outcome).inc()
            if not decision.exhaustive:
                _CANDIDATES.labels(kind=self.kind).observe(decision.n_candidates)
            _OVERHEAD_US.labels(kind=self.kind).observe(
                (time.perf_counter_ns() - started) / 1_000.0
            )
            if span is not None:
                span.set(
                    nprobe=decision.nprobe_used,
                    candidates=decision.n_candidates,
                    shards=len(decision.shard_ids),
                    exhaustive=decision.exhaustive,
                )
        return decision

    def nominate_group(
        self,
        query_descriptor_list: list[np.ndarray],
        nprobe: int | None = None,
        recall_target: float | None = None,
    ) -> RouteDecision:
        """Merged nomination for a fused query group (one fan-out)."""
        return RouteDecision.merge(
            [self.nominate(q, nprobe, recall_target) for q in query_descriptor_list]
        )


class IvfCandidateRouter(CandidateRouter):
    """IVF coarse-centroid router.

    K-means over the pooled per-image vectors partitions the corpus
    into ``n_lists`` inverted lists; a query probes the ``nprobe``
    centroids nearest its pooled vector and nominates every image in
    those lists, ranked by list order then by pooled-vector distance
    to the query.
    """

    def __init__(self, policy: RouterPolicy, d: int = 128) -> None:
        super().__init__(policy, d)
        self._centroids: np.ndarray | None = None
        self._lists: list[list[str]] = []
        #: ref -> index of the coarse list holding it.
        self._list_of: dict[str, int] = {}

    @property
    def max_nprobe(self) -> int:
        if self._centroids is not None:
            return len(self._centroids)
        return self.policy.n_lists

    def _rebuild(self) -> None:
        if not self._pooled:
            self._centroids = None
            self._lists = []
            self._list_of = {}
            return
        ref_ids = list(self._pooled)
        pooled = np.stack([self._pooled[r] for r in ref_ids])
        k = min(self.policy.n_lists, len(ref_ids))
        self._centroids = kmeans(pooled, k, seed=self.policy.seed)
        d2 = (
            np.einsum("nd,nd->n", pooled, pooled)[:, None]
            - 2.0 * pooled @ self._centroids.T
            + np.einsum("kd,kd->k", self._centroids, self._centroids)[None, :]
        )
        assign = np.argmin(d2, axis=1)
        self._lists = [[] for _ in range(k)]
        self._list_of = {}
        for ref, lst in zip(ref_ids, assign):
            self._lists[int(lst)].append(ref)
            self._list_of[ref] = int(lst)

    def _absorb(self, ref_id: str) -> None:
        # incremental enrolment: assign the new pooled vector to its
        # nearest *existing* centroid list — the coarse quantiser is
        # not re-trained per enrolment, only re-used.
        if self._dirty or self._centroids is None:
            self._dirty = True
            return
        vec = self._pooled[ref_id]
        d2 = ((self._centroids - vec[None, :]) ** 2).sum(axis=1)
        lst = int(np.argmin(d2))
        self._lists[lst].append(ref_id)
        self._list_of[ref_id] = lst
        _REFRESHES.labels(kind=self.kind, mode="incremental").inc()

    def _retract(self, ref_id: str) -> None:
        if self._dirty or self._centroids is None:
            self._dirty = True
            return
        lst = self._list_of.pop(ref_id, None)
        if lst is None:
            self._dirty = True
            return
        self._lists[lst].remove(ref_id)
        _REFRESHES.labels(kind=self.kind, mode="incremental").inc()

    def _nominate(self, pooled_query: np.ndarray, nprobe: int) -> list[str]:
        if self._centroids is None:
            return []
        nprobe = min(nprobe, len(self._centroids))
        d2 = ((self._centroids - pooled_query[None, :]) ** 2).sum(axis=1)
        probe = np.argsort(d2, kind="stable")[:nprobe]
        ranked: list[str] = []
        for lst in probe:
            members = self._lists[int(lst)]
            if not members:
                continue
            vecs = np.stack([self._pooled[r] for r in members])
            member_d2 = ((vecs - pooled_query[None, :]) ** 2).sum(axis=1)
            order = np.argsort(member_d2, kind="stable")
            ranked.extend(members[int(i)] for i in order)
        return ranked


class LshCandidateRouter(CandidateRouter):
    """LSH-banding router.

    Pooled vectors are signed into ``n_bits``-bit signatures
    (:class:`~repro.baselines.lsh.LshCodec`); signatures split into
    bands of ``band_bits``.  An image is nominated when it shares at
    least ``max(1, band_matches + 1 - nprobe)`` band values with the
    query — ``nprobe=1`` demands ``band_matches`` collisions
    (tightest), each extra probe relaxes the threshold by one until
    the classic OR-of-bands rule (any single collision nominates) —
    the codec analogue of probing more IVF lists.  Candidates rank by
    descending band matches, then ascending full-signature Hamming
    distance, then insertion order.
    """

    def __init__(self, policy: RouterPolicy, d: int = 128) -> None:
        super().__init__(policy, d)
        self._codec: LshCodec | None = None
        self._ref_ids: list[str] = []
        self._codes: np.ndarray | None = None
        self._bands: np.ndarray | None = None
        #: ref -> signature row; rows of removed refs are masked dead
        #: (row deletion would shift every later index) and compacted
        #: by a full rebuild once the majority of rows are dead.
        self._row_of: dict[str, int] = {}
        self._alive: np.ndarray | None = None
        self._dead_rows = 0

    @property
    def n_bands(self) -> int:
        return self.policy.n_bits // self.policy.band_bits

    @property
    def max_nprobe(self) -> int:
        # past this, the threshold is pinned at one collision
        return max(1, self.policy.band_matches)

    def _band_values(self, codes: np.ndarray) -> np.ndarray:
        """``(count, n_words)`` packed signatures -> ``(count, n_bands)``
        integer band values."""
        bits = unpack_bits(codes, self.policy.n_bits)
        width = self.policy.band_bits
        weights = (1 << np.arange(width, dtype=np.uint64))
        bands = np.empty((codes.shape[0], self.n_bands), dtype=np.uint64)
        for band in range(self.n_bands):
            chunk = bits[:, band * width : (band + 1) * width].astype(np.uint64)
            bands[:, band] = chunk @ weights
        return bands

    def _rebuild(self) -> None:
        if not self._pooled:
            self._codec = None
            self._ref_ids = []
            self._codes = None
            self._bands = None
            self._row_of = {}
            self._alive = None
            self._dead_rows = 0
            return
        self._ref_ids = list(self._pooled)
        pooled = np.stack([self._pooled[r] for r in self._ref_ids])  # (count, d)
        self._codec = LshCodec(d=self.d, n_bits=self.policy.n_bits, seed=self.policy.seed)
        self._codec.train(pooled.T)
        self._codes = self._codec.encode(pooled.T)
        self._bands = self._band_values(self._codes)
        self._row_of = {ref: i for i, ref in enumerate(self._ref_ids)}
        self._alive = np.ones(len(self._ref_ids), dtype=bool)
        self._dead_rows = 0

    def _absorb(self, ref_id: str) -> None:
        # incremental enrolment: sign the new pooled vector with the
        # *existing* codec and append one signature/band row.
        if self._dirty or self._codec is None or self._codes is None:
            self._dirty = True
            return
        codes = self._codec.encode(self._pooled[ref_id][:, None])
        self._row_of[ref_id] = len(self._ref_ids)
        self._ref_ids.append(ref_id)
        self._codes = np.vstack([self._codes, codes])
        self._bands = np.vstack([self._bands, self._band_values(codes)])
        self._alive = np.append(self._alive, True)
        _REFRESHES.labels(kind=self.kind, mode="incremental").inc()

    def _retract(self, ref_id: str) -> None:
        if self._dirty or self._codec is None or self._alive is None:
            self._dirty = True
            return
        row = self._row_of.pop(ref_id, None)
        if row is None:
            self._dirty = True
            return
        self._alive[row] = False
        self._dead_rows += 1
        _REFRESHES.labels(kind=self.kind, mode="incremental").inc()
        if self._dead_rows * 2 > len(self._ref_ids):
            # mostly tombstones: compact with a full rebuild next use
            self._dirty = True

    def _nominate(self, pooled_query: np.ndarray, nprobe: int) -> list[str]:
        if self._codec is None or self._bands is None or self._codes is None:
            return []
        threshold = min(
            max(1, self.policy.band_matches + 1 - nprobe), self.n_bands
        )
        q_codes = self._codec.encode(pooled_query[:, None])
        q_bands = self._band_values(q_codes)[0]
        band_matches = (self._bands == q_bands[None, :]).sum(axis=1)
        eligible = band_matches >= threshold
        if self._alive is not None:
            eligible &= self._alive
        hits = np.nonzero(eligible)[0]
        if hits.size == 0:
            return []
        hamming = self._codec.hamming(q_codes, self._codes[hits])[0]
        order = np.lexsort((hits, hamming, -band_matches[hits]))
        return [self._ref_ids[int(hits[i])] for i in order]


def build_router(policy: RouterPolicy, d: int = 128) -> CandidateRouter:
    """Construct the router implementation named by ``policy.kind``."""
    if policy.kind == "ivf":
        return IvfCandidateRouter(policy, d=d)
    if policy.kind == "lsh":
        return LshCandidateRouter(policy, d=d)
    raise ValueError(f"unknown router kind {policy.kind!r}")
