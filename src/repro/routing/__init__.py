"""Two-tier retrieval: coarse candidate routing in front of the exact
per-image 2-NN sweep (FAISS-style IVF / Cascade-Hashing coarse-to-fine).

See :mod:`repro.routing.router` for the protocol and the IVF/LSH
implementations, and ``docs/routing.md`` for tuning guidance.
"""

from .router import (
    CandidateRouter,
    IvfCandidateRouter,
    LshCandidateRouter,
    RouteDecision,
    RouterPolicy,
    build_router,
    pool_descriptors,
)

__all__ = [
    "CandidateRouter",
    "IvfCandidateRouter",
    "LshCandidateRouter",
    "RouteDecision",
    "RouterPolicy",
    "build_router",
    "pool_descriptors",
]
