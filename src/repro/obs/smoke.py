"""Observability smoke check — run as ``python -m repro.obs.smoke``.

Drives one tiny end-to-end request through the full stack (web tier →
cluster → node → engine → cache → device) with metrics and tracing
enabled, then verifies the two exported surfaces:

* ``GET /metrics`` returns Prometheus text exposition that a minimal
  parser accepts, with the key series (cache, engine, web) non-zero;
* the request tracer exports valid Perfetto/Chrome JSON whose deepest
  request lane nests at least five layers (web → cluster → node →
  engine → cache);
* the time-series layer end-to-end: an installed
  :class:`~repro.obs.timeseries.TimeSeriesRecorder` accumulates
  samples on the simulated clock as cluster ops advance it, the SLO
  engine evaluates its policies on the sample grid,
  ``GET /metrics/history`` serves the ring buffer, ``GET /stats``
  reports the schema-v7 ``"slo"`` block, and the Perfetto export
  carries telemetry counter tracks next to the spans.

Exit code 0 on success; any assertion failure is a non-zero exit, so
CI can run this module directly as a smoke step.  The trace is written
to the path given as the first argument (default ``obs_trace.json``)
for artifact upload.
"""

from __future__ import annotations

import json
import sys

import numpy as np

from . import (
    BurnRateRule,
    SeriesSelection,
    SloEngine,
    SloPolicy,
    TimeSeriesRecorder,
    default_registry,
    default_tracer,
    install_engine,
    install_recorder,
    reset_observability,
    uninstall_engine,
    uninstall_recorder,
)


def _make_descriptors(count: int, seed: int, d: int = 32) -> np.ndarray:
    rng = np.random.default_rng(seed)
    desc = rng.gamma(0.6, 1.0, size=(d, count)).astype(np.float32)
    desc /= np.linalg.norm(desc, axis=0, keepdims=True)
    return (desc * 512.0).astype(np.float32)


def parse_prometheus(text: str) -> dict[str, float]:
    """Minimal Prometheus text-format parser: ``{series: value}``.

    Validates the subset the registry emits (HELP/TYPE comments and
    ``name{labels} value`` samples) and raises ``ValueError`` on any
    malformed line — that is the "Prometheus parses it" assertion.
    """
    samples: dict[str, float] = {}
    typed: set[str] = set()
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) < 4:
                raise ValueError(f"malformed comment line: {line!r}")
            if parts[1] == "TYPE":
                if parts[3] not in ("counter", "gauge", "histogram"):
                    raise ValueError(f"unknown metric type in: {line!r}")
                typed.add(parts[2])
            continue
        if line.startswith("#"):
            raise ValueError(f"unexpected comment line: {line!r}")
        series, _, value = line.rpartition(" ")
        if not series:
            raise ValueError(f"malformed sample line: {line!r}")
        name = series.split("{", 1)[0]
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix):
                base = name[: -len(suffix)]
                break
        if name not in typed and base not in typed:
            raise ValueError(f"sample without # TYPE: {line!r}")
        samples[series] = float(value)
    return samples


def run_smoke(trace_path: str = "obs_trace.json") -> dict:
    """Execute the smoke scenario; returns a summary dict (raises on
    any failed check)."""
    from ..core import EngineConfig
    from ..distributed import DistributedSearchSystem, Request, WebTier

    reset_observability()
    registry = default_registry()
    tracer = default_tracer()
    tracer.enable()

    cfg = EngineConfig(m=32, n=32, d=32, batch_size=2, min_matches=3)
    system = DistributedSearchSystem(2, cfg)
    web = WebTier(system, n_workers=2)

    refs = {f"tex-{i}": _make_descriptors(24, seed=100 + i) for i in range(4)}
    for ref_id, desc in refs.items():
        record = web.handle(
            Request("POST", "/textures", {"id": ref_id, "descriptors": desc.tolist()})
        )
        assert record.response.status == 201, record.response

    query = refs["tex-1"] + np.float32(1.0)
    search = web.handle(
        Request("POST", "/search", {"descriptors": query.tolist(), "top": 2})
    )
    assert search.response.ok, search.response
    assert search.response.body["results"], "search returned no matches"

    # ---- metrics surface ------------------------------------------------
    scrape = web.handle(Request("GET", "/metrics")).response
    assert scrape.ok, scrape
    samples = parse_prometheus(scrape.body["text"])
    key_series = [
        "repro_cache_adds_total",
        "repro_engine_sweeps_total",
        'repro_cache_sweep_lookups_total{result="hit"}',
        'repro_web_requests_total{route="search",status="200"}',
        'repro_cluster_searches_total{kind="single"}',
    ]
    for series in key_series:
        value = samples.get(series, 0.0)
        assert value > 0, f"expected non-zero series {series}, got {value}"

    # ---- trace surface --------------------------------------------------
    tracer.export(trace_path)
    with open(trace_path) as fh:
        payload = json.load(fh)
    events = [e for e in payload["traceEvents"] if e.get("ph") == "X"]
    assert events, "trace exported no spans"
    layers = {e.get("cat") for e in events}
    required = {"web", "cluster", "node", "engine", "cache"}
    missing = required - layers
    assert not missing, f"trace missing layers: {sorted(missing)}"
    search_traces = [t for t in tracer.traces() if len(tracer.trace_shape(t)) >= 5]
    assert search_traces, "no request trace with >= 5 nesting layers"
    depth = max(
        max(d for d, _, _ in tracer.trace_shape(t)) + 1 for t in search_traces
    )
    assert depth >= 5, f"deepest trace nests {depth} layers, need >= 5"

    # ---- time-series + SLO surface --------------------------------------
    # install a recorder on the simulated clock (each cluster search
    # advances it by the search's elapsed simulated time) and an SLO
    # engine evaluating on its sample grid
    recorder = TimeSeriesRecorder(interval_us=2_000.0, retention=128)
    install_recorder(recorder)
    engine = SloEngine(
        [
            SloPolicy(
                name="sweep-latency", kind="latency", objective=0.5,
                metric="repro_engine_sweep_us", threshold_us=100.0,
                critical=BurnRateRule(4_000.0, 16_000.0, 1.5),
                warning=BurnRateRule(8_000.0, 32_000.0, 1.0),
            ),
            SloPolicy(
                name="search-availability", kind="availability", objective=0.99,
                error_series=(
                    SeriesSelection("repro_cluster_partial_results_total"),
                ),
                total_series=(SeriesSelection("repro_cluster_searches_total"),),
                critical=BurnRateRule(4_000.0, 16_000.0, 10.0),
                warning=BurnRateRule(8_000.0, 32_000.0, 2.0),
            ),
        ]
    )
    engine.attach(recorder)
    install_engine(engine)

    for i in range(6):
        hit = web.handle(
            Request("POST", "/search", {"descriptors": query.tolist(), "top": 1})
        )
        assert hit.response.ok, hit.response
    recorder.flush()
    assert len(recorder) >= 3, (
        f"recorder took {len(recorder)} samples; cluster ops did not "
        "advance the simulated clock"
    )
    search_rate = recorder.rate(
        "repro_cluster_searches_total", recorder.now_us
    )
    assert search_rate > 0, "windowed search rate is zero after 6 searches"
    assert engine.state_of("search-availability") == "ok", (
        "healthy searches tripped the availability SLO: "
        f"{engine.burns_of('search-availability')}"
    )

    history = web.handle(
        Request("GET", "/metrics/history", {"names": [
            "repro_cluster_searches_total", "repro_engine_sweep_us",
        ]})
    ).response
    assert history.ok, history
    assert history.body["enabled"], "history route reports recorder missing"
    assert history.body["n_samples"] == len(recorder)
    newest = history.body["samples"][-1]["series"]
    assert "repro_cluster_searches_total" in newest, sorted(newest)

    stats = web.handle(Request("GET", "/stats")).response
    assert stats.ok, stats
    assert stats.body["schema_version"] == 8, stats.body["schema_version"]
    slo_block = stats.body["slo"]
    assert slo_block["recorder"]["enabled"], slo_block
    assert slo_block["engine"]["enabled"], slo_block
    states = {p["name"]: p["state"] for p in slo_block["engine"]["policies"]}
    assert set(states) == {"sweep-latency", "search-availability"}, states

    counters = recorder.perfetto_counters(["repro_cluster_searches_total"])
    merged = json.loads(tracer.to_perfetto(counters=counters))
    counter_events = [
        e for e in merged["traceEvents"] if e.get("ph") == "C"
    ]
    assert counter_events, "Perfetto export carries no counter tracks"
    assert any(
        e.get("name") == "process_name" and e["args"]["name"] == "telemetry"
        for e in merged["traceEvents"]
    ), "telemetry process metadata missing from Perfetto export"

    uninstall_engine()
    uninstall_recorder()
    tracer.disable()
    registry.enable()
    return {
        "series_checked": key_series,
        "samples": len(samples),
        "spans": len(events),
        "max_depth": depth,
        "timeseries_samples": len(recorder),
        "slo_states": states,
        "trace_path": trace_path,
    }


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    trace_path = argv[0] if argv else "obs_trace.json"
    summary = run_smoke(trace_path)
    print("observability smoke OK")
    for key, value in summary.items():
        print(f"  {key}: {value}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
