"""Request-scoped span tracing across every tier.

A *trace* follows one request from its ingress (web tier dispatch or
the serving batcher) down through the cluster scatter, the node RPC,
the engine's cache sweep and the per-batch cache staging.  Each layer
opens a :class:`Span` with ``tracer.span(name, layer=...)``; the
current span lives in a :mod:`contextvars` variable, so propagation is
implicit — no API grows a ``trace_id`` parameter, and a span opened
three layers down parents correctly onto whatever is active.

The tracer is **off by default** and free when off (one attribute
check per call site).  When enabled, the *outermost* span mints a new
``trace_id`` and becomes the trace root; ids are deterministic
counters, so identical runs export identical structure.

Span timestamps are host wall-clock microseconds (``perf_counter_ns``)
rebased to the tracer's first span: nesting is therefore guaranteed by
construction (a child's ``with`` block is strictly inside its
parent's).  Simulated durations are attached as span *attributes*
(``sim_elapsed_us``) rather than span bounds — the simulated clocks of
different devices are not one timeline, the host clock is.

Export is Chrome/Perfetto JSON (:func:`to_perfetto`): request spans
render as one lane per trace under a ``requests`` process, and the
events of a :class:`~repro.gpusim.tracing.TimelineTracer` can be
merged in as ``device`` lanes so a single file shows the request
hierarchy above the engine rows it generated.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from time import perf_counter_ns

__all__ = ["RequestTracer", "Span", "default_tracer", "to_perfetto"]

_current_span: ContextVar["Span | None"] = ContextVar("repro_obs_span", default=None)


@dataclass
class Span:
    """One timed operation inside a trace."""

    name: str
    layer: str
    trace_id: str
    span_id: int
    parent_id: int | None
    start_us: float
    end_us: float = 0.0
    depth: int = 0
    attrs: dict = field(default_factory=dict)

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us

    def set(self, **attrs: object) -> None:
        """Attach attributes mid-span (results, simulated durations)."""
        self.attrs.update(attrs)


class RequestTracer:
    """Process-wide span collector with implicit context propagation."""

    def __init__(self) -> None:
        self.enabled = False
        self.spans: list[Span] = []
        self._trace_seq = 0
        self._span_seq = 0
        self._t0_ns: int | None = None

    # -- lifecycle ------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop collected spans and restart the id sequences."""
        self.spans = []
        self._trace_seq = 0
        self._span_seq = 0
        self._t0_ns = None

    def _now_us(self) -> float:
        now = perf_counter_ns()
        if self._t0_ns is None:
            self._t0_ns = now
        return (now - self._t0_ns) / 1e3

    # -- span API -------------------------------------------------------
    @contextmanager
    def span(self, name: str, layer: str = "app", **attrs: object):
        """Open a span under the current one (minting a trace at the
        root).  Yields the :class:`Span`, or ``None`` when disabled —
        callers guard attribute writes with ``if span is not None`` or
        use :meth:`annotate`."""
        if not self.enabled:
            yield None
            return
        parent = _current_span.get()
        if parent is None:
            self._trace_seq += 1
            trace_id = f"t{self._trace_seq:06d}"
            parent_id = None
            depth = 0
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
            depth = parent.depth + 1
        self._span_seq += 1
        span = Span(
            name=name,
            layer=layer,
            trace_id=trace_id,
            span_id=self._span_seq,
            parent_id=parent_id,
            start_us=self._now_us(),
            depth=depth,
            attrs=dict(attrs),
        )
        token = _current_span.set(span)
        try:
            yield span
        finally:
            span.end_us = self._now_us()
            _current_span.reset(token)
            self.spans.append(span)

    def current(self) -> Span | None:
        return _current_span.get()

    def annotate(self, **attrs: object) -> None:
        """Attach attributes to the active span, if any (no-op cost
        of one contextvar read when tracing is enabled)."""
        if not self.enabled:
            return
        span = _current_span.get()
        if span is not None:
            span.attrs.update(attrs)

    # -- views ----------------------------------------------------------
    def traces(self) -> dict[str, list[Span]]:
        """Spans grouped by trace id, each list in start order."""
        grouped: dict[str, list[Span]] = {}
        for span in sorted(self.spans, key=lambda s: (s.start_us, s.span_id)):
            grouped.setdefault(span.trace_id, []).append(span)
        return grouped

    def trace_shape(self, trace_id: str) -> list[tuple[int, str, str]]:
        """``(depth, layer, name)`` tuples in start order — the
        structural fingerprint of one trace (timestamps excluded), used
        to compare a group-of-1 trace against a plain search trace."""
        return [
            (s.depth, s.layer, s.name)
            for s in self.traces().get(trace_id, [])
        ]

    # -- export ---------------------------------------------------------
    def to_perfetto(self, engine_events=(), counters=()) -> str:
        return to_perfetto(self.spans, engine_events, counters)

    def export(self, path, engine_events=(), counters=()) -> None:
        """Write the Perfetto JSON trace file."""
        from pathlib import Path

        Path(path).write_text(self.to_perfetto(engine_events, counters))


#: pids in the merged export: request spans above, device lanes below,
#: telemetry counter tracks last.
_REQUESTS_PID = 1
_DEVICE_PID = 2
_TELEMETRY_PID = 3


def to_perfetto(spans, engine_events=(), counters=()) -> str:
    """Merge request spans, simulated device rows and telemetry counter
    tracks into one Chrome-tracing / Perfetto JSON document.

    ``spans`` are :class:`Span` objects (host-clock timestamps, one
    lane per trace under the ``requests`` process); ``engine_events``
    are :class:`~repro.gpusim.tracing.TraceEvent`-shaped objects
    (simulated timestamps, one lane per device engine under the
    ``device`` process); ``counters`` are
    ``{"series", "ts", "value"}`` dicts, typically from
    :meth:`repro.obs.timeseries.TimeSeriesRecorder.perfetto_counters`
    (simulated timestamps, one ``ph: "C"`` counter track per series
    under the ``telemetry`` process).  The processes keep their own
    timebases — Perfetto renders them as separate tracks in the same
    file.
    """
    records: list[dict] = []
    trace_tids: dict[str, int] = {}
    for span in sorted(spans, key=lambda s: (s.start_us, s.span_id)):
        tid = trace_tids.setdefault(span.trace_id, len(trace_tids) + 1)
        records.append(
            {
                "name": span.name,
                "cat": span.layer,
                "ph": "X",
                "ts": round(span.start_us, 3),
                "dur": round(span.duration_us, 3),
                "pid": _REQUESTS_PID,
                "tid": tid,
                "args": {
                    "trace_id": span.trace_id,
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    **span.attrs,
                },
            }
        )
    for trace_id, tid in trace_tids.items():
        records.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _REQUESTS_PID,
                "tid": tid,
                "args": {"name": f"trace {trace_id}"},
            }
        )

    engines = sorted({e.engine for e in engine_events})
    engine_tid = {engine: i + 1 for i, engine in enumerate(engines)}
    for event in engine_events:
        records.append(
            {
                "name": event.step,
                "cat": event.stream,
                "ph": "X",
                "ts": event.start_us,
                "dur": event.duration_us,
                "pid": _DEVICE_PID,
                "tid": engine_tid[event.engine],
                "args": {"stream": event.stream, "sim_time": True},
            }
        )
    for engine, tid in engine_tid.items():
        records.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _DEVICE_PID,
                "tid": tid,
                "args": {"name": engine},
            }
        )
    counter_series: set[str] = set()
    for point in counters:
        series = str(point["series"])
        counter_series.add(series)
        records.append(
            {
                "name": series,
                "ph": "C",
                "ts": point["ts"],
                "pid": _TELEMETRY_PID,
                "args": {"value": point["value"]},
            }
        )

    for pid, name in (
        (_REQUESTS_PID, "requests"),
        (_DEVICE_PID, "device"),
        (_TELEMETRY_PID, "telemetry"),
    ):
        if pid == _DEVICE_PID and not engines:
            continue
        if pid == _TELEMETRY_PID and not counter_series:
            continue
        records.append(
            {"name": "process_name", "ph": "M", "pid": pid, "args": {"name": name}}
        )
    return json.dumps({"traceEvents": records, "displayTimeUnit": "ms"})


_default = RequestTracer()


def default_tracer() -> RequestTracer:
    """The process-wide tracer every instrument site writes to."""
    return _default
