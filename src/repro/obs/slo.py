"""Declarative SLOs with multi-window burn-rate alerting.

An :class:`SloPolicy` states an objective ("99% of sweeps finish within
2.5 ms", "99.9% of searches complete without shed") and the
:class:`SloEngine` turns the :class:`~repro.obs.timeseries.TimeSeriesRecorder`'s
windowed views into an OK → WARNING → CRITICAL state machine using the
SRE-workbook *multi-window, multi-burn-rate* construction:

* Every objective reduces to a windowed ``(errors, total)`` pair — for
  a latency objective an "error" is an observation above the threshold
  (from histogram bucket deltas); for an availability objective it is
  the delta of an error-counter selection over the delta of a total
  selection.
* ``burn_rate = error_fraction / error_budget`` where the budget is
  ``1 − objective``.  Burn 1.0 spends the budget exactly at the rate
  the objective allows; burn 3.0 exhausts a 30-day budget in 10 days.
* A severity fires only when **both** its fast and its slow window
  burn at or above the rule's threshold: the slow window proves the
  problem is real, the fast window proves it is *still happening*
  (and resets quickly once it stops).
* Hysteresis: severity escalates immediately, but downgrades only
  after the higher severity's rules have been quiet for
  ``clear_hold_us`` of simulated time — a flapping burn rate does not
  produce a flapping alert history.

The engine subscribes to the recorder's sample grid, so evaluation
points are exactly the sample boundaries: the alert timeline is a pure
function of the event timeline and is byte-comparable across runs —
the determinism test in ``tests/test_timeseries_slo.py`` relies on it.

Alert state is also pushed back into the metrics registry
(``repro_slo_state``, ``repro_slo_burn_rate``,
``repro_slo_transitions_total``) so the existing exporters — Prometheus
text, ``GET /stats`` schema v7, Perfetto counter tracks — surface SLO
health with no extra plumbing, and any :class:`AlertSink` (the future
autoscaler) can subscribe for structured events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from .metrics import MetricsRegistry, default_registry
from .timeseries import TimeSeriesRecorder

__all__ = [
    "OK",
    "WARNING",
    "CRITICAL",
    "AlertEvent",
    "AlertLog",
    "BurnRateRule",
    "SloEngine",
    "SloPolicy",
    "install_engine",
    "installed_engine",
    "uninstall_engine",
]

OK = "ok"
WARNING = "warning"
CRITICAL = "critical"

#: numeric encoding of states for the ``repro_slo_state`` gauge.
_STATE_LEVEL = {OK: 0, WARNING: 1, CRITICAL: 2}


@dataclass(frozen=True)
class BurnRateRule:
    """One multi-window burn-rate condition.

    Fires when the error budget burns at ``burn_threshold``× the
    sustainable rate over *both* windows.  Classic pairings put the
    fast window at ~1/12 of the slow one.
    """

    fast_window_us: float
    slow_window_us: float
    burn_threshold: float

    def __post_init__(self) -> None:
        if self.fast_window_us <= 0 or self.slow_window_us <= 0:
            raise ValueError("burn-rate windows must be positive")
        if self.fast_window_us > self.slow_window_us:
            raise ValueError(
                f"fast window ({self.fast_window_us}) must not exceed "
                f"slow window ({self.slow_window_us})"
            )
        if self.burn_threshold <= 0:
            raise ValueError("burn_threshold must be positive")


@dataclass(frozen=True)
class SeriesSelection:
    """A counter selection: metric name plus a (partial) label match,
    summed across matching children."""

    name: str
    labels: Mapping[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class SloPolicy:
    """A declarative service-level objective.

    ``kind="latency"``: ``objective`` of observations of histogram
    ``metric`` (under ``labels``) must finish within ``threshold_us``
    (quantised up to the histogram's bucket resolution).

    ``kind="availability"``: ``objective`` of the ``total_series``
    counter increase must *not* be in the ``error_series`` increase
    (e.g. shed + deadline-missed over all completions).
    """

    name: str
    kind: str  # "latency" | "availability"
    objective: float  # e.g. 0.99 -> 1% error budget
    critical: BurnRateRule
    warning: BurnRateRule
    clear_hold_us: float = 0.0
    # latency policies
    metric: str = ""
    threshold_us: float = 0.0
    labels: Mapping[str, str] = field(default_factory=dict)
    # availability policies
    error_series: tuple[SeriesSelection, ...] = ()
    total_series: tuple[SeriesSelection, ...] = ()
    #: evaluate only when the slow window saw at least this many events
    #: (tiny windows make burn rates of 0/0 or 1/1 meaningless).
    min_events: int = 1

    def __post_init__(self) -> None:
        if self.kind not in ("latency", "availability"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"objective must be in (0, 1), got {self.objective}"
            )
        if self.kind == "latency":
            if not self.metric or self.threshold_us <= 0:
                raise ValueError(
                    "latency policies need a histogram metric and a "
                    "positive threshold_us"
                )
        else:
            if not self.error_series or not self.total_series:
                raise ValueError(
                    "availability policies need error_series and "
                    "total_series selections"
                )
        if self.clear_hold_us < 0:
            raise ValueError("clear_hold_us must be >= 0")
        if self.min_events < 1:
            raise ValueError("min_events must be >= 1")

    @property
    def error_budget(self) -> float:
        return 1.0 - self.objective

    def _window_errors(
        self, recorder: TimeSeriesRecorder, window_us: float
    ) -> tuple[float, float]:
        """(errors, total) for the trailing window under this policy."""
        if self.kind == "latency":
            errors, total = recorder.window_error_fraction(
                self.metric, self.threshold_us, window_us, self.labels
            )
            return float(errors), float(total)
        errors = sum(
            recorder.delta(sel.name, window_us, sel.labels)
            for sel in self.error_series
        )
        total = sum(
            recorder.delta(sel.name, window_us, sel.labels)
            for sel in self.total_series
        )
        return errors, total

    def burn_rate(
        self, recorder: TimeSeriesRecorder, window_us: float
    ) -> float:
        """Error-budget burn multiple over the trailing window (0.0 for
        an empty window — no traffic burns no budget)."""
        errors, total = self._window_errors(recorder, window_us)
        if total <= 0:
            return 0.0
        return (errors / total) / self.error_budget


@dataclass(frozen=True)
class AlertEvent:
    """One state transition in a policy's alert history."""

    t_us: float
    policy: str
    state: str  # the new state
    previous: str
    burn_fast: float
    burn_slow: float

    def to_dict(self) -> dict:
        return {
            "t_us": self.t_us,
            "policy": self.policy,
            "state": self.state,
            "previous": self.previous,
            "burn_fast": self.burn_fast,
            "burn_slow": self.burn_slow,
        }


class AlertLog:
    """Append-only structured record of every transition."""

    def __init__(self) -> None:
        self.events: list[AlertEvent] = []

    def append(self, event: AlertEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def for_policy(self, name: str) -> list[AlertEvent]:
        return [e for e in self.events if e.policy == name]

    def first_at(self, name: str, state: str) -> AlertEvent | None:
        """Earliest transition of ``name`` *into* ``state``."""
        for event in self.events:
            if event.policy == name and event.state == state:
                return event
        return None

    def worst_state(self, name: str) -> str:
        worst = OK
        for event in self.events:
            if event.policy != name:
                continue
            if _STATE_LEVEL[event.state] > _STATE_LEVEL[worst]:
                worst = event.state
        return worst

    def to_dicts(self) -> list[dict]:
        return [e.to_dict() for e in self.events]


#: structured alert subscriber — the autoscaler/health tier plugs in here.
AlertSink = Callable[[AlertEvent], None]


class _PolicyState:
    __slots__ = ("state", "clear_since_us", "burns")

    def __init__(self) -> None:
        self.state = OK
        #: simulated time since which every rule above the current
        #: state's severity has been quiet (None = not quiet).
        self.clear_since_us: float | None = None
        #: last evaluated burns {severity: (fast, slow)} for stats.
        self.burns: dict[str, tuple[float, float]] = {}


class SloEngine:
    """Evaluates policies on the recorder's sample grid.

    Construct, then :meth:`attach` to a recorder (subscribes as a
    sample listener).  Severity escalates the instant a rule fires;
    it downgrades only after the policy's rules at higher severities
    have been continuously quiet for ``clear_hold_us``.
    """

    def __init__(
        self,
        policies: Sequence[SloPolicy],
        registry: MetricsRegistry | None = None,
        sinks: Sequence[AlertSink] = (),
    ) -> None:
        names = [p.name for p in policies]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate policy names in {names}")
        self.policies = tuple(policies)
        self.log = AlertLog()
        self._states = {p.name: _PolicyState() for p in self.policies}
        self._sinks = list(sinks)
        self._recorder: TimeSeriesRecorder | None = None
        reg = registry if registry is not None else default_registry()
        self._g_state = reg.gauge(
            "repro_slo_state",
            "Alert state per SLO policy (0=ok, 1=warning, 2=critical)",
            labelnames=("policy",),
        )
        self._g_burn = reg.gauge(
            "repro_slo_burn_rate",
            "Error-budget burn-rate multiple per policy and window",
            labelnames=("policy", "window"),
        )
        self._c_transitions = reg.counter(
            "repro_slo_transitions_total",
            "Alert state transitions per policy and destination state",
            labelnames=("policy", "to"),
        )
        self._c_sink_errors = reg.counter(
            "repro_slo_sink_errors_total",
            "AlertSink callbacks that raised during dispatch (each sink "
            "is isolated, so one hostile sink can neither abort "
            "evaluation nor starve the other sinks)",
        )
        for policy in self.policies:
            self._g_state.labels(policy=policy.name).set(0.0)

    # -- wiring ---------------------------------------------------------
    def attach(self, recorder: TimeSeriesRecorder) -> None:
        if self._recorder is not None:
            self.detach()
        self._recorder = recorder
        recorder.add_listener(self._on_sample)

    def detach(self) -> None:
        if self._recorder is not None:
            self._recorder.remove_listener(self._on_sample)
            self._recorder = None

    def add_sink(self, sink: AlertSink) -> None:
        self._sinks.append(sink)

    # -- evaluation -----------------------------------------------------
    def _on_sample(self, sample) -> None:
        self.evaluate(sample.t_us)

    def evaluate(self, t_us: float) -> None:
        recorder = self._recorder
        if recorder is None:
            return
        for policy in self.policies:
            self._evaluate_policy(policy, recorder, t_us)

    def _rule_fires(
        self,
        policy: SloPolicy,
        rule: BurnRateRule,
        recorder: TimeSeriesRecorder,
    ) -> tuple[bool, float, float]:
        # one windowed (errors, total) query per window — this runs on
        # every sample for every policy, so don't recompute the slow
        # window for the min_events gate
        e_fast, t_fast = policy._window_errors(recorder, rule.fast_window_us)
        e_slow, t_slow = policy._window_errors(recorder, rule.slow_window_us)
        budget = policy.error_budget
        fast = (e_fast / t_fast) / budget if t_fast > 0 else 0.0
        slow = (e_slow / t_slow) / budget if t_slow > 0 else 0.0
        fires = (
            t_slow >= policy.min_events
            and fast >= rule.burn_threshold
            and slow >= rule.burn_threshold
        )
        return fires, fast, slow

    def _evaluate_policy(
        self, policy: SloPolicy, recorder: TimeSeriesRecorder, t_us: float
    ) -> None:
        state = self._states[policy.name]
        crit_fires, crit_fast, crit_slow = self._rule_fires(
            policy, policy.critical, recorder
        )
        warn_fires, warn_fast, warn_slow = self._rule_fires(
            policy, policy.warning, recorder
        )
        state.burns = {
            CRITICAL: (crit_fast, crit_slow),
            WARNING: (warn_fast, warn_slow),
        }
        self._g_burn.labels(policy=policy.name, window="critical_fast").set(crit_fast)
        self._g_burn.labels(policy=policy.name, window="critical_slow").set(crit_slow)
        self._g_burn.labels(policy=policy.name, window="warning_fast").set(warn_fast)
        self._g_burn.labels(policy=policy.name, window="warning_slow").set(warn_slow)

        if crit_fires:
            target = CRITICAL
        elif warn_fires:
            target = WARNING
        else:
            target = OK

        current = state.state
        if _STATE_LEVEL[target] >= _STATE_LEVEL[current]:
            # escalation (or steady state at the firing severity) is
            # immediate, and any firing at >= current severity resets
            # the clear clock.
            state.clear_since_us = None
            if target != current:
                self._transition(
                    policy, state, target, t_us,
                    *(state.burns[target] if target in state.burns else (0.0, 0.0)),
                )
            return
        # target below current: hold the current severity until the
        # rules have been quiet for clear_hold_us of simulated time.
        if state.clear_since_us is None:
            state.clear_since_us = t_us
        if t_us - state.clear_since_us >= policy.clear_hold_us:
            burns = state.burns.get(target, (0.0, 0.0)) if target != OK else (
                warn_fast, warn_slow
            )
            self._transition(policy, state, target, t_us, *burns)
            state.clear_since_us = None

    def _transition(
        self,
        policy: SloPolicy,
        state: _PolicyState,
        target: str,
        t_us: float,
        burn_fast: float,
        burn_slow: float,
    ) -> None:
        event = AlertEvent(
            t_us=t_us,
            policy=policy.name,
            state=target,
            previous=state.state,
            burn_fast=burn_fast,
            burn_slow=burn_slow,
        )
        state.state = target
        self.log.append(event)
        self._g_state.labels(policy=policy.name).set(
            float(_STATE_LEVEL[target])
        )
        self._c_transitions.labels(policy=policy.name, to=target).inc()
        # the state machine committed above; sinks are observers and
        # must not be able to unwind it — a raising sink is counted and
        # skipped, the remaining sinks still see the event
        for sink in list(self._sinks):
            try:
                sink(event)
            except Exception:
                self._c_sink_errors.inc()

    # -- introspection --------------------------------------------------
    def state_of(self, name: str) -> str:
        return self._states[name].state

    def burns_of(self, name: str) -> dict[str, tuple[float, float]]:
        return dict(self._states[name].burns)

    def to_dict(self) -> dict:
        """The ``"slo"`` stats block (schema v7)."""
        policies = []
        for policy in self.policies:
            state = self._states[policy.name]
            entry = {
                "name": policy.name,
                "kind": policy.kind,
                "objective": policy.objective,
                "state": state.state,
                "burn": {
                    sev: {"fast": fast, "slow": slow}
                    for sev, (fast, slow) in sorted(state.burns.items())
                },
            }
            if policy.kind == "latency":
                entry["metric"] = policy.metric
                entry["threshold_us"] = policy.threshold_us
            policies.append(entry)
        return {
            "policies": policies,
            "alerts": self.log.to_dicts(),
            "n_transitions": len(self.log),
        }


# ---------------------------------------------------------------------
# process-wide installation (mirrors timeseries.install_recorder)
# ---------------------------------------------------------------------
_installed: SloEngine | None = None


def install_engine(engine: SloEngine) -> SloEngine | None:
    global _installed
    previous = _installed
    _installed = engine
    return previous


def installed_engine() -> SloEngine | None:
    return _installed


def uninstall_engine() -> SloEngine | None:
    global _installed
    previous = _installed
    if previous is not None:
        previous.detach()
    _installed = None
    return previous
