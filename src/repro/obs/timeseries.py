"""Time-series telemetry on the simulated clock.

The registry (:mod:`repro.obs.metrics`) is *cumulative*: counters only
grow, histograms remember every observation since process start.  That
answers "how many, ever" but not the questions an autoscaler or an SLO
engine must ask — "what is the p99 over the last five simulated
seconds", "how fast is goodput burning right now".  This module adds
the missing axis: a :class:`TimeSeriesRecorder` scrapes the registry at
a fixed cadence of **simulated** time and keeps the samples in a ring
buffer, from which windowed views are derived:

* counters → :meth:`~TimeSeriesRecorder.rate` (per-second deltas),
* gauges → :meth:`~TimeSeriesRecorder.last` (most recent value),
* histograms → *bucket deltas* between window edges →
  :meth:`~TimeSeriesRecorder.window_percentile` (sliding-window
  nearest-rank p50/p95/p99, quantised to bucket upper bounds) and
  :meth:`~TimeSeriesRecorder.window_error_fraction` (share of
  observations above a threshold — the raw material of burn rates).

Determinism rules
-----------------
* **No wall-clock reads.**  The recorder owns a monotone simulated
  clock advanced only by explicit hooks: :func:`advance_to` from
  drivers that own an absolute timeline (the serving event loop) and
  :func:`advance_by` from relative drivers (cluster search/enroll ops
  called outside any loop).  A driver that owns absolute time wraps its
  run in :func:`exclusive_clock` so nested relative hooks (the cluster
  call *inside* a serving executor) do not double-advance.
* **Samples land on the grid.**  Crossing one or more interval
  boundaries takes exactly one sample, stamped at the *last* boundary
  crossed — identical event timelines scrape identical sample
  timelines, which is what makes alert histories byte-comparable.
* **Events attribute forward.**  Instrument sites advance the clock
  *before* recording events that happen at the new time, so a sample
  at boundary ``T`` never contains an event from after ``T``; events
  between boundaries appear in the next sample.  Attribution
  granularity is therefore one interval.

One recorder may be *installed* process-wide (:func:`install_recorder`)
— the hooks in the serving loop and the cluster are no-ops when nothing
is installed (one global read), keeping the uninstrumented hot path at
the same cost the observability bench already budgets.
"""

from __future__ import annotations

import math
from collections import deque
from contextlib import contextmanager
from typing import Callable, Iterable, Mapping, Sequence

from .metrics import Histogram, MetricsRegistry, default_registry

__all__ = [
    "Sample",
    "TimeSeriesRecorder",
    "advance_by",
    "advance_to",
    "exclusive_clock",
    "install_recorder",
    "installed_recorder",
    "uninstall_recorder",
]

#: default scrape cadence — 50 simulated ms, comfortably finer than any
#: serving-level SLO window while keeping a 256-deep ring under 13 s.
DEFAULT_INTERVAL_US = 50_000.0

#: default ring-buffer depth (samples retained).
DEFAULT_RETENTION = 256


class Sample:
    """One scrape: everything the registry held at simulated ``t_us``.

    ``data`` maps metric name → {label-values tuple → point}; a point is
    a ``float`` (counter/gauge) or a ``(bucket_counts, sum, count)``
    tuple (histogram, cumulative since process start — windowed views
    subtract two samples).
    """

    __slots__ = ("t_us", "data")

    def __init__(self, t_us: float, data: dict) -> None:
        self.t_us = t_us
        self.data = data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Sample(t_us={self.t_us}, metrics={len(self.data)})"


def _match(labelnames: Sequence[str], key: tuple, labels: Mapping[str, str]) -> bool:
    """Does the child at ``key`` satisfy the (possibly partial) label
    selection?  An empty selection matches every child — selections sum
    across matches, so ``labels={}`` aggregates a whole family."""
    child = dict(zip(labelnames, key))
    return all(child.get(k) == str(v) for k, v in labels.items())


class TimeSeriesRecorder:
    """Deterministic registry scraper with ring-buffer retention."""

    def __init__(
        self,
        interval_us: float = DEFAULT_INTERVAL_US,
        retention: int = DEFAULT_RETENTION,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if interval_us <= 0:
            raise ValueError(f"interval_us must be > 0, got {interval_us}")
        if retention < 2:
            raise ValueError(f"retention must be >= 2 samples, got {retention}")
        self.interval_us = float(interval_us)
        self.retention = int(retention)
        self._registry = registry if registry is not None else default_registry()
        self._samples: deque[Sample] = deque(maxlen=self.retention)
        #: metric name -> (kind, labelnames, buckets-or-None); refreshed
        #: at every scrape so late-registered series are picked up.
        self._meta: dict[str, tuple[str, tuple[str, ...], tuple[float, ...] | None]] = {}
        self._listeners: list[Callable[[Sample], None]] = []
        self._exclusive_depth = 0
        self.now_us = 0.0
        self._next_boundary = self.interval_us
        self._take_sample(0.0)  # baseline: windows delta against t=0

    # -- clock ----------------------------------------------------------
    def advance_to(self, now_us: float) -> None:
        """Advance the simulated clock to an absolute time (monotone:
        a reading behind the clock is ignored).  Crossing one or more
        sample boundaries scrapes once, at the last boundary crossed."""
        now_us = float(now_us)
        if now_us <= self.now_us:
            return
        self.now_us = now_us
        if now_us >= self._next_boundary:
            boundary = math.floor(now_us / self.interval_us) * self.interval_us
            self._take_sample(boundary)
            self._next_boundary = boundary + self.interval_us

    def advance_by(self, delta_us: float) -> None:
        """Advance the clock by a relative simulated duration.  No-op
        inside an :meth:`exclusive` scope — the absolute driver already
        accounts that time."""
        if self._exclusive_depth or delta_us <= 0:
            return
        self.advance_to(self.now_us + float(delta_us))

    @contextmanager
    def exclusive(self):
        """Mark an absolute-timeline driver's scope: :meth:`advance_by`
        calls from code nested under it are suppressed so simulated time
        is charged exactly once."""
        self._exclusive_depth += 1
        try:
            yield self
        finally:
            self._exclusive_depth -= 1

    def flush(self) -> Sample:
        """Force a scrape at the current clock reading (off-grid; used
        to close out a run so the final window sees every event)."""
        return self._take_sample(self.now_us)

    # -- sampling -------------------------------------------------------
    def _take_sample(self, t_us: float) -> Sample:
        data: dict[str, dict[tuple, object]] = {}
        for name, metric in self._registry._metrics.items():
            buckets = getattr(metric, "buckets", None)
            self._meta[name] = (metric.kind, metric.labelnames, buckets)
            series: dict[tuple, object] = {}
            if metric.labelnames:
                children = metric._children.items()
            else:
                children = ((), metric),
            for key, child in children:
                if isinstance(child, Histogram):
                    series[key] = (
                        tuple(child.bucket_counts), child.sum, child.count
                    )
                else:
                    series[key] = child.value
            data[name] = series
        sample = Sample(t_us, data)
        if self._samples and self._samples[-1].t_us == t_us:
            self._samples[-1] = sample  # re-scrape of the same instant
        else:
            self._samples.append(sample)
        for listener in list(self._listeners):
            listener(sample)
        return sample

    def add_listener(self, fn: Callable[[Sample], None]) -> None:
        """Call ``fn(sample)`` after every new sample (the SLO engine
        subscribes here, so alerts evaluate on the sample grid)."""
        self._listeners.append(fn)

    def remove_listener(self, fn: Callable[[Sample], None]) -> None:
        if fn in self._listeners:
            self._listeners.remove(fn)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> list[Sample]:
        return list(self._samples)

    # -- point lookups --------------------------------------------------
    def _point(self, sample: Sample, name: str, labels: Mapping[str, str] | None):
        """Aggregated point for one metric in one sample: matching
        children are summed (floats, or bucket arrays element-wise)."""
        series = sample.data.get(name)
        if not series:
            return None
        meta = self._meta.get(name)
        labelnames = meta[1] if meta else ()
        labels = labels or {}
        total = None
        for key, point in series.items():
            if labels and not _match(labelnames, key, labels):
                continue
            if total is None:
                total = point if isinstance(point, float) else (
                    list(point[0]), point[1], point[2]
                )
            elif isinstance(point, float):
                total += point
            else:
                counts, s, c = total
                total = (
                    [a + b for a, b in zip(counts, point[0])],
                    s + point[1], c + point[2],
                )
        return total

    def _bracket(self, window_us: float) -> tuple[Sample, Sample] | None:
        """(start, end) samples spanning the trailing window: end is
        the newest sample, start the newest sample at least
        ``window_us`` older (clamped to the oldest retained — a window
        longer than the ring degrades gracefully, never errors)."""
        if len(self._samples) < 2:
            return None
        end = self._samples[-1]
        cutoff = end.t_us - float(window_us)
        # windows are short relative to retention: scan from the right
        # instead of materialising the whole timestamp list
        start = self._samples[0]
        for sample in reversed(self._samples):
            if sample.t_us <= cutoff:
                start = sample
                break
        if start.t_us >= end.t_us:
            return None
        return start, end

    # -- windowed views -------------------------------------------------
    def last(self, name: str, labels: Mapping[str, str] | None = None) -> float:
        """Latest sampled value of a counter or gauge (summed over the
        label selection); 0.0 before the first matching sample."""
        if not self._samples:
            return 0.0
        point = self._point(self._samples[-1], name, labels)
        return float(point) if isinstance(point, (int, float)) else 0.0

    def delta(
        self, name: str, window_us: float,
        labels: Mapping[str, str] | None = None,
    ) -> float:
        """Counter increase over the trailing window (clamped at 0 so a
        mid-run registry reset reads as silence, not a negative rate)."""
        bracket = self._bracket(window_us)
        if bracket is None:
            return 0.0
        start, end = bracket
        v0 = self._point(start, name, labels)
        v1 = self._point(end, name, labels)
        if not isinstance(v1, (int, float)):
            return 0.0
        v0 = v0 if isinstance(v0, (int, float)) else 0.0
        return max(float(v1) - float(v0), 0.0)

    def rate(
        self, name: str, window_us: float,
        labels: Mapping[str, str] | None = None,
    ) -> float:
        """Counter rate (per *second* of simulated time) over the
        trailing window."""
        bracket = self._bracket(window_us)
        if bracket is None:
            return 0.0
        start, end = bracket
        span_us = end.t_us - start.t_us
        if span_us <= 0:
            return 0.0
        return self.delta(name, window_us, labels) / (span_us / 1e6)

    def window_histogram(
        self, name: str, window_us: float,
        labels: Mapping[str, str] | None = None,
    ) -> tuple[tuple[float, ...], list[int], int, float]:
        """``(bounds, bucket_deltas, count, sum)`` for the trailing
        window — the histogram of *only* the observations inside it.
        Per-bucket deltas are clamped at 0 (registry resets)."""
        meta = self._meta.get(name)
        bounds = meta[2] if meta else None
        if bounds is None:
            return (), [], 0, 0.0
        bracket = self._bracket(window_us)
        if bracket is None:
            return bounds, [0] * (len(bounds) + 1), 0, 0.0
        start, end = bracket
        h0 = self._point(start, name, labels)
        h1 = self._point(end, name, labels)
        if not isinstance(h1, tuple):
            return bounds, [0] * (len(bounds) + 1), 0, 0.0
        if not isinstance(h0, tuple):
            h0 = ([0] * len(h1[0]), 0.0, 0)
        deltas = [max(a - b, 0) for a, b in zip(h1[0], h0[0])]
        return bounds, deltas, max(h1[2] - h0[2], 0), max(h1[1] - h0[1], 0.0)

    def window_percentile(
        self, name: str, p: float, window_us: float,
        labels: Mapping[str, str] | None = None,
    ) -> float:
        """Nearest-rank percentile of the observations inside the
        trailing window, computed from histogram bucket deltas.

        The answer is quantised to bucket *upper bounds* (the smallest
        bound with at least ``p``% of the windowed observations at or
        below it); observations past the last bound report ``inf``.
        Returns 0.0 for an empty window.
        """
        if not 0 < p <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {p}")
        bounds, deltas, count, _ = self.window_histogram(name, window_us, labels)
        if count <= 0:
            return 0.0
        rank = max(1, math.ceil(p / 100.0 * count))
        running = 0
        for bound, n in zip(bounds, deltas):
            running += n
            if running >= rank:
                return float(bound)
        return math.inf

    def window_error_fraction(
        self, name: str, threshold_us: float, window_us: float,
        labels: Mapping[str, str] | None = None,
    ) -> tuple[int, int]:
        """``(errors, total)`` over the trailing window, where an error
        is an observation *above* ``threshold_us``.

        The threshold is quantised to the smallest bucket bound at or
        above it (bucket resolution is all a histogram knows); a
        threshold past the last bound counts only overflow observations.
        """
        bounds, deltas, count, _ = self.window_histogram(name, window_us, labels)
        if count <= 0:
            return 0, 0
        # quantise: everything in buckets whose bound <= the effective
        # (snapped-up) threshold bound is good; the rest — including
        # overflow — is late.
        effective = self.effective_threshold_us(bounds, threshold_us)
        good = sum(n for bound, n in zip(bounds, deltas) if bound <= effective)
        return count - good, count

    @staticmethod
    def effective_threshold_us(
        bounds: Sequence[float], threshold_us: float
    ) -> float:
        """The bucket bound a threshold quantises to (``inf`` when past
        the last bound) — surfaced so SLO policies can report the
        resolution they are actually evaluated at."""
        for bound in bounds:
            if bound >= threshold_us:
                return float(bound)
        return math.inf

    def histogram_bounds(self, name: str) -> tuple[float, ...]:
        meta = self._meta.get(name)
        return meta[2] if meta and meta[2] is not None else ()

    # -- export ---------------------------------------------------------
    def history(
        self,
        names: Iterable[str] | None = None,
        since_us: float | None = None,
        limit: int | None = None,
    ) -> dict:
        """JSON-ready sample history for ``GET /metrics/history``.

        ``names`` restricts to those metric families, ``since_us``
        drops samples older than the timestamp, ``limit`` keeps only
        the newest N surviving samples.
        """
        selected = set(names) if names is not None else None
        samples = [
            s for s in self._samples
            if since_us is None or s.t_us >= since_us
        ]
        if limit is not None and limit >= 0:
            samples = samples[-limit:] if limit else []
        meta_out = {}
        for name, (kind, labelnames, buckets) in sorted(self._meta.items()):
            if selected is not None and name not in selected:
                continue
            entry: dict = {"kind": kind, "labelnames": list(labelnames)}
            if buckets is not None:
                entry["buckets"] = list(buckets)
            meta_out[name] = entry
        out_samples = []
        for sample in samples:
            series_out: dict[str, list] = {}
            for name, series in sample.data.items():
                if selected is not None and name not in selected:
                    continue
                labelnames = self._meta.get(name, ("", (), None))[1]
                rows = []
                for key, point in series.items():
                    labels = dict(zip(labelnames, key))
                    if isinstance(point, tuple):
                        rows.append({
                            "labels": labels,
                            "buckets": list(point[0]),
                            "sum": point[1],
                            "count": point[2],
                        })
                    else:
                        rows.append({"labels": labels, "value": point})
                series_out[name] = rows
            out_samples.append({"t_us": sample.t_us, "series": series_out})
        return {
            "interval_us": self.interval_us,
            "retention": self.retention,
            "now_us": self.now_us,
            "n_samples": len(out_samples),
            "meta": meta_out,
            "samples": out_samples,
        }

    def perfetto_counters(
        self, names: Iterable[str] | None = None
    ) -> list[dict]:
        """Counter-track points for :func:`repro.obs.to_perfetto`: one
        point per (sample, series), counters/gauges by value and
        histograms by cumulative observation count.  Timestamps are
        simulated microseconds — the telemetry process keeps its own
        timebase next to the request and device processes."""
        selected = set(names) if names is not None else None
        points: list[dict] = []
        for sample in self._samples:
            for name, series in sample.data.items():
                if selected is not None and name not in selected:
                    continue
                labelnames = self._meta.get(name, ("", (), None))[1]
                for key, point in series.items():
                    value = point[2] if isinstance(point, tuple) else point
                    label = name
                    if key:
                        inner = ",".join(
                            f"{k}={v}" for k, v in zip(labelnames, key)
                        )
                        label = f"{name}{{{inner}}}"
                    points.append({
                        "series": label,
                        "ts": sample.t_us,
                        "value": float(value),
                    })
        return points


# ---------------------------------------------------------------------
# process-wide installation — the hooks below are what the serving loop
# and the cluster call; they cost one global read when nothing is
# installed.
# ---------------------------------------------------------------------
_installed: TimeSeriesRecorder | None = None


def install_recorder(recorder: TimeSeriesRecorder) -> TimeSeriesRecorder | None:
    """Install the process-wide recorder; returns the previous one (or
    ``None``) so callers can restore it."""
    global _installed
    previous = _installed
    _installed = recorder
    return previous


def installed_recorder() -> TimeSeriesRecorder | None:
    return _installed


def uninstall_recorder() -> TimeSeriesRecorder | None:
    """Remove the process-wide recorder; returns it."""
    global _installed
    previous = _installed
    _installed = None
    return previous


def advance_to(now_us: float) -> None:
    """Hook for absolute-timeline drivers (the serving event loop)."""
    recorder = _installed
    if recorder is not None:
        recorder.advance_to(now_us)


def advance_by(delta_us: float) -> None:
    """Hook for relative drivers (cluster ops outside any event loop)."""
    recorder = _installed
    if recorder is not None:
        recorder.advance_by(delta_us)


@contextmanager
def exclusive_clock():
    """Hook-level :meth:`TimeSeriesRecorder.exclusive` that no-ops when
    nothing is installed."""
    recorder = _installed
    if recorder is None:
        yield None
        return
    with recorder.exclusive():
        yield recorder
