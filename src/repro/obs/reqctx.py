"""Request-scoped overload context: deadlines and brownout hints.

Overload protection needs two pieces of per-request state to flow from
the ingress (serving batcher or web tier) down to the engine's cache
sweep without growing every API a parameter:

* a **deadline** — how much simulated time the request is still worth
  spending.  The engine checks it between cache batches and stops
  sweeping when it expires (returning a partial result) instead of
  burning simulated GPU time on an answer nobody is waiting for.
* a **brownout fraction** — when the web tier is under pressure it
  degrades searches to a fraction of the populated shards *before*
  rejecting requests outright.

Both ride the same :mod:`contextvars` mechanism the request tracer uses
(:mod:`repro.obs.tracing`): a ``with deadline_scope(...)`` /
``brownout_scope(...)`` block at the ingress, ``current_deadline()`` /
``current_brownout()`` reads anywhere below it.  No API changed shape.

Deadlines are *budgets of simulated time*, not absolute timestamps —
the tiers keep separate simulated clocks (each device has its own), so
an absolute deadline has no single timeline to live on.  The leaf that
spends simulated time (the engine sweep, the cluster's retry backoff)
charges the budget; :class:`DeadlineFanOut` handles the scatter-gather
case where a serially-simulated fan-out models *concurrent* node
sweeps: every branch starts from the same spent amount and the join
charges only the slowest branch, exactly like the cluster's
``max(node_time)`` latency arithmetic.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass

__all__ = [
    "Deadline",
    "DeadlineFanOut",
    "brownout_scope",
    "current_brownout",
    "current_deadline",
    "deadline_scope",
]

_deadline: ContextVar["Deadline | None"] = ContextVar(
    "repro_obs_deadline", default=None
)
_brownout: ContextVar[float | None] = ContextVar(
    "repro_obs_brownout", default=None
)


@dataclass
class Deadline:
    """A simulated-time budget charged as work is performed.

    ``budget_us`` is the total simulated time the request may spend;
    ``spent_us`` accumulates charges from the layers that actually
    consume simulated time.  ``expired`` never un-expires on its own —
    but a :class:`DeadlineFanOut` branch may rewind ``spent_us`` to
    model concurrency (see module docstring).
    """

    budget_us: float
    spent_us: float = 0.0

    def __post_init__(self) -> None:
        if self.budget_us < 0:
            raise ValueError(f"budget_us must be >= 0, got {self.budget_us}")

    @property
    def remaining_us(self) -> float:
        return max(0.0, self.budget_us - self.spent_us)

    @property
    def expired(self) -> bool:
        return self.spent_us >= self.budget_us

    def charge(self, elapsed_us: float) -> None:
        """Record ``elapsed_us`` of simulated time spent on this request."""
        if elapsed_us > 0:
            self.spent_us += elapsed_us


class DeadlineFanOut:
    """Deadline accounting for a concurrent fan-out simulated serially.

    The cluster iterates its nodes one by one, but models them as
    running *concurrently* (the gather's latency is the max node time).
    Charging the deadline serially would burn the budget ``n_nodes``
    times too fast, so each :meth:`branch` rewinds ``spent_us`` to the
    fan-out's starting point and :meth:`join` charges only the slowest
    branch::

        fan = DeadlineFanOut(current_deadline())
        for node in nodes:
            with fan.branch():
                ...  # node attempt; engine sweeps charge the deadline
        fan.join()

    A ``None`` deadline makes every method a no-op, so call sites need
    no guards.
    """

    def __init__(self, deadline: Deadline | None) -> None:
        self.deadline = deadline
        self._base_us = deadline.spent_us if deadline is not None else 0.0
        self._slowest_us = 0.0

    @property
    def expired_at_entry(self) -> bool:
        """True when the budget was already gone before the fan-out."""
        return self.deadline is not None and self._base_us >= self.deadline.budget_us

    @contextmanager
    def branch(self):
        """One concurrent branch: starts from the fan-out's base spend."""
        if self.deadline is None:
            yield
            return
        self.deadline.spent_us = self._base_us
        try:
            yield
        finally:
            self._slowest_us = max(
                self._slowest_us, self.deadline.spent_us - self._base_us
            )

    def join(self) -> None:
        """Settle the fan-out: charge the slowest branch once."""
        if self.deadline is not None:
            self.deadline.spent_us = self._base_us + self._slowest_us


@contextmanager
def deadline_scope(budget_us: float):
    """Attach a fresh :class:`Deadline` of ``budget_us`` simulated time
    to the current context; yields it for post-hoc inspection."""
    deadline = Deadline(budget_us=float(budget_us))
    token = _deadline.set(deadline)
    try:
        yield deadline
    finally:
        _deadline.reset(token)


def current_deadline() -> Deadline | None:
    """The deadline governing the current request, if any."""
    return _deadline.get()


@contextmanager
def brownout_scope(shard_fraction: float):
    """Mark the current request as browned out: scatter-gathers below
    this scope search only ``shard_fraction`` of the populated shards
    (never fewer than one) and return partial results for the rest."""
    fraction = float(shard_fraction)
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"shard_fraction must be in (0, 1], got {fraction}")
    token = _brownout.set(fraction)
    try:
        yield
    finally:
        _brownout.reset(token)


def current_brownout() -> float | None:
    """The active brownout shard fraction, or ``None`` at full service."""
    return _brownout.get()
