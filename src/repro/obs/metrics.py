"""Labeled metrics primitives and the process-wide registry.

The paper's argument is built on measurement (per-step breakdowns in
Tables 1/3, cluster throughput in Sec. 8); this module makes the same
accounting first-class for the *running system*: every layer registers
named :class:`Counter` / :class:`Gauge` / :class:`Histogram` series in
one :class:`MetricsRegistry` and the web tier exposes them as a JSON
snapshot and Prometheus text exposition (``GET /metrics``).

Design rules
------------
* **One registry per process** (:func:`default_registry`), mirroring
  the Prometheus client model: instrument sites create their series at
  import time and the registry deduplicates by name, so a cluster of
  nodes aggregates into the same series unless a label distinguishes
  them.
* **Labels are sparse**: a metric created with ``labelnames`` only
  materialises a child series the first time that label combination is
  observed, and snapshots list series in first-seen order (stable for
  tests and diffing).
* **Hot-path cost is one attribute check**: the registry carries an
  ``enabled`` flag consulted by every ``inc``/``set``/``observe``, so
  the ``observability`` bench experiment can measure the
  instrumentation's own wall-clock overhead honestly.
* **No locks**: the simulator is single-threaded by construction (the
  event loops simulate concurrency rather than spawning it); if a real
  transport is ever added, guard ``_get_child`` and the value updates.

Metric names follow Prometheus conventions: ``repro_`` namespace,
``_total`` suffix for counters, ``_us`` suffix for microsecond
histograms.  The full catalogue lives in ``docs/observability.md``.
"""

from __future__ import annotations

import json
import math
from bisect import bisect_left
from typing import Iterable, Mapping, Sequence

__all__ = [
    "Counter",
    "DEFAULT_US_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "set_default_registry",
]

#: default buckets for microsecond-duration histograms: roughly
#: logarithmic from kernel-launch scale (10us) to multi-second sweeps.
DEFAULT_US_BUCKETS = (
    10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1_000.0, 2_500.0, 5_000.0, 10_000.0, 25_000.0, 50_000.0,
    100_000.0, 250_000.0, 500_000.0, 1_000_000.0, 5_000_000.0,
)

_RESERVED_LABELS = frozenset({"le"})


def _format_value(value: float) -> str:
    """Prometheus-style number formatting (integers lose the '.0')."""
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text format 0.0.4:
    backslash, double-quote and line-feed must be backslash-escaped
    (in that order — escaping the escapes first keeps it reversible)."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: Mapping[str, str], extra: str = "") -> str:
    parts = [f'{k}="{_escape_label_value(v)}"' for k, v in labels.items()]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class _Metric:
    """Common machinery: a named family of label -> child series."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help_: str,
        labelnames: Sequence[str] = (),
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        bad = _RESERVED_LABELS.intersection(labelnames)
        if bad:
            raise ValueError(f"reserved label name(s): {sorted(bad)}")
        self.name = name
        self.help = help_
        self.labelnames = tuple(labelnames)
        self._registry = registry
        #: label-values tuple -> child, in first-seen order
        self._children: dict[tuple[str, ...], _Metric] = {}
        if not self.labelnames:
            self._init_series()

    # -- label plumbing -------------------------------------------------
    def labels(self, **labelvalues: object):
        """The child series for one label combination (created lazily)."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[n]) for n in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = type(self).__new__(type(self))
            child.name = self.name
            child.help = self.help
            child.labelnames = ()
            child._registry = self._registry
            child._children = {}
            child._copy_config(self)
            child._init_series()
            self._children[key] = child
        return child

    def _copy_config(self, parent: "_Metric") -> None:  # pragma: no cover
        pass

    def _init_series(self) -> None:
        raise NotImplementedError

    @property
    def _enabled(self) -> bool:
        return self._registry is None or self._registry.enabled

    def _series(self) -> Iterable[tuple[dict[str, str], "_Metric"]]:
        """(labels, child) pairs — the bare series itself if unlabeled."""
        if self.labelnames:
            for key, child in self._children.items():
                yield dict(zip(self.labelnames, key)), child
        else:
            yield {}, self

    def reset(self) -> None:
        """Zero every series (children are kept, not dropped)."""
        for _labels, child in self._series():
            child._init_series()

    # -- export ---------------------------------------------------------
    def snapshot_value(self):
        raise NotImplementedError

    def snapshot(self) -> dict:
        return {
            "type": self.kind,
            "help": self.help,
            "series": [
                {"labels": labels, **child.snapshot_value()}
                for labels, child in self._series()
            ],
        }

    def expose(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} {self.kind}"]
        for labels, child in self._series():
            lines.extend(child._expose_series(labels))
        return lines

    def _expose_series(self, labels: dict[str, str]) -> list[str]:
        raise NotImplementedError


class Counter(_Metric):
    """Monotonically increasing count (``*_total``)."""

    kind = "counter"

    def _init_series(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if not self._enabled:
            return
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def snapshot_value(self) -> dict:
        return {"value": self.value}

    def _expose_series(self, labels: dict[str, str]) -> list[str]:
        return [f"{self.name}{_format_labels(labels)} {_format_value(self.value)}"]


class Gauge(_Metric):
    """A value that can go up and down (queue depth, bytes resident)."""

    kind = "gauge"

    def _init_series(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        if self._enabled:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if self._enabled:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def snapshot_value(self) -> dict:
        return {"value": self.value}

    def _expose_series(self, labels: dict[str, str]) -> list[str]:
        return [f"{self.name}{_format_labels(labels)} {_format_value(self.value)}"]


class Histogram(_Metric):
    """Cumulative-bucket histogram (Prometheus semantics).

    Also usable standalone (no registry) as a cheap accumulator — the
    serving tier builds per-run histograms this way and the report
    layer reads ``sum``/``count``/``mean`` back.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_US_BUCKETS,
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets = bounds
        super().__init__(name, help_, labelnames, registry)

    def _copy_config(self, parent: "_Metric") -> None:
        self.buckets = parent.buckets  # type: ignore[attr-defined]

    def _init_series(self) -> None:
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # + overflow
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        if not self._enabled:
            return
        self.sum += value
        self.count += 1
        # first bound >= value (bounds are sorted), overflow past the end
        # — binary search instead of the linear scan; this sits on the
        # engine's per-sweep hot path
        self.bucket_counts[bisect_left(self.buckets, value)] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot_value(self) -> dict:
        cumulative = []
        running = 0
        for bound, n in zip(self.buckets, self.bucket_counts):
            running += n
            cumulative.append({"le": bound, "count": running})
        return {"sum": self.sum, "count": self.count, "buckets": cumulative}

    def _expose_series(self, labels: dict[str, str]) -> list[str]:
        lines = []
        running = 0
        for bound, n in zip(self.buckets, self.bucket_counts):
            running += n
            le = 'le="%s"' % _format_value(bound)
            lines.append(f"{self.name}_bucket{_format_labels(labels, le)} {running}")
        inf = 'le="+Inf"'
        lines.append(f"{self.name}_bucket{_format_labels(labels, inf)} {self.count}")
        lines.append(f"{self.name}_sum{_format_labels(labels)} {_format_value(self.sum)}")
        lines.append(f"{self.name}_count{_format_labels(labels)} {self.count}")
        return lines


class MetricsRegistry:
    """Process-wide metric namespace.

    ``counter``/``gauge``/``histogram`` are *get-or-create*: calling
    twice with the same name returns the same family (so every engine
    in a cluster shares one series), but re-using a name across metric
    kinds is an error.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}
        self.enabled = True

    # -- registration ---------------------------------------------------
    def _get_or_create(self, cls, name: str, help_: str, labelnames, **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls) or existing.labelnames != tuple(labelnames):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind} with labels {existing.labelnames}"
                )
            return existing
        metric = cls(name, help_, labelnames, registry=self, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help_: str, labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help_, labelnames)

    def gauge(self, name: str, help_: str, labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help_, labelnames)

    def histogram(
        self,
        name: str,
        help_: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_US_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help_, labelnames, buckets=buckets)

    def get(self, name: str) -> _Metric | None:
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return list(self._metrics)

    # -- lifecycle ------------------------------------------------------
    def reset(self) -> None:
        """Zero every series; registrations (and children) survive."""
        for metric in self._metrics.values():
            metric.reset()

    def disable(self) -> None:
        self.enabled = False

    def enable(self) -> None:
        self.enabled = True

    # -- export ---------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready ``{name: {type, help, series}}`` mapping."""
        return {name: metric.snapshot() for name, metric in self._metrics.items()}

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format 0.0.4."""
        lines: list[str] = []
        for metric in self._metrics.values():
            lines.extend(metric.expose())
        return "\n".join(lines) + "\n" if lines else ""

    def value(self, name: str, **labelvalues: object) -> float:
        """Convenience: current value of a counter/gauge series
        (0.0 if the metric or label combination does not exist yet)."""
        metric = self._metrics.get(name)
        if metric is None:
            return 0.0
        if labelvalues or metric.labelnames:
            key = tuple(str(labelvalues.get(n, "")) for n in metric.labelnames)
            child = metric._children.get(key)
            if child is None:
                return 0.0
            return getattr(child, "value", 0.0)
        return getattr(metric, "value", 0.0)


_default = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry every instrument site writes to."""
    return _default


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry (tests); returns the previous one.

    Note: instrument sites bind their series objects at import time, so
    swapping the registry affects *newly created* series only — prefer
    :meth:`MetricsRegistry.reset` for isolation.
    """
    global _default
    previous = _default
    _default = registry
    return previous
