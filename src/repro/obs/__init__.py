"""Unified observability: labeled metrics + request-scoped tracing.

Two process-wide singletons tie the system's telemetry together:

* :func:`default_registry` — the :class:`MetricsRegistry` every layer
  (cache, engine, node, cluster, web tier, serving loop) writes its
  :class:`Counter`/:class:`Gauge`/:class:`Histogram` series to.
  Exposed as a JSON snapshot and as Prometheus text via the REST
  route ``GET /metrics``.
* :func:`default_tracer` — the :class:`RequestTracer` that follows one
  request from ingress down to the engine's cache sweep.  Off by
  default; enable it (``default_tracer().enable()`` or
  ``python -m repro.bench.run ... --trace out.json``) and every search
  exports as Perfetto/Chrome JSON, optionally merged with a
  :class:`~repro.gpusim.tracing.TimelineTracer`'s simulated device
  lanes (:func:`to_perfetto`).

On top of the cumulative registry sits an optional time-series layer:
an installed :class:`TimeSeriesRecorder` scrapes the registry on the
simulated clock into a ring buffer (windowed rates and sliding-window
percentiles), and an :class:`SloEngine` evaluates declarative
:class:`SloPolicy` objectives with multi-window burn-rate rules into an
OK→WARNING→CRITICAL alert history (``GET /metrics/history``, the
``"slo"`` stats block, and Perfetto counter tracks).

See ``docs/observability.md`` for the metric catalogue, label
conventions and how to open traces in Perfetto.
"""

from .metrics import (
    DEFAULT_US_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    set_default_registry,
)
from .reqctx import (
    Deadline,
    DeadlineFanOut,
    brownout_scope,
    current_brownout,
    current_deadline,
    deadline_scope,
)
from .slo import (
    CRITICAL,
    OK,
    WARNING,
    AlertEvent,
    AlertLog,
    BurnRateRule,
    SeriesSelection,
    SloEngine,
    SloPolicy,
    install_engine,
    installed_engine,
    uninstall_engine,
)
from .timeseries import (
    TimeSeriesRecorder,
    install_recorder,
    installed_recorder,
    uninstall_recorder,
)
from .tracing import RequestTracer, Span, default_tracer, to_perfetto

__all__ = [
    "AlertEvent",
    "AlertLog",
    "BurnRateRule",
    "CRITICAL",
    "Counter",
    "DEFAULT_US_BUCKETS",
    "Deadline",
    "DeadlineFanOut",
    "Gauge",
    "OK",
    "WARNING",
    "Histogram",
    "MetricsRegistry",
    "RequestTracer",
    "SeriesSelection",
    "SloEngine",
    "SloPolicy",
    "Span",
    "TimeSeriesRecorder",
    "brownout_scope",
    "current_brownout",
    "current_deadline",
    "deadline_scope",
    "default_registry",
    "default_tracer",
    "install_engine",
    "install_recorder",
    "installed_engine",
    "installed_recorder",
    "reset_observability",
    "set_default_registry",
    "to_perfetto",
    "uninstall_engine",
    "uninstall_recorder",
]


def reset_observability() -> None:
    """Zero every metric series and drop all collected spans (the
    tracer's enabled/disabled state is reset to disabled).  Test
    isolation helper — wired as an autouse fixture in the test suite."""
    default_registry().reset()
    default_registry().enable()
    tracer = default_tracer()
    tracer.reset()
    tracer.disable()
    uninstall_engine()
    uninstall_recorder()
