"""Multi-stream overlap model (Sec. 6.2, Table 6).

The paper dedicates one CPU thread + one CUDA stream to each equal
slice of the host-resident reference batches.  Within a thread the
cycle per batch is H2D -> kernels -> D2H (issued synchronously), while
across threads the PCIe engine arbitrates transfers in chunks — each
concurrent stream sees ~1/S of the link.  The steady-state cycle of one
stream is therefore::

    cycle(S) = S * t_h2d + t_compute + t_d2h

and the node completes ``S`` batches per cycle.  The model reproduces
Table 6's ramp (52.5 % -> 87.3 % schedule efficiency from 1 to 8
streams) and its *theoretical speed* — the pure PCIe bound
``batch / t_h2d`` (47,592 img/s for m=768 FP16 at 9.4 GB/s, Sec. 6.2).

Extra GPU memory per stream is the stream's private similarity matrix
``A`` (batch x m x n) plus its staging buffer for the in-flight
reference batch, atop a fixed engine overhead — matching Table 6's
measured footprints.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpusim.calibration import KernelCalibration
from ..gpusim.device import DeviceSpec
from ..gpusim.kernels import (
    d2h_result_us,
    dtype_bytes,
    elementwise_us,
    gemm_us,
    postprocess_us,
    top2_scan_us,
)
from ..gpusim.pcie import h2d_time_us

__all__ = ["StreamPlan", "plan_streams", "stream_extra_gpu_bytes", "batch_component_times"]

#: fixed engine overhead independent of stream count (cuBLAS workspace,
#: query buffers, ...), fit from Table 6's footprints.
FIXED_OVERHEAD_BYTES = int(0.3e9)


@dataclass(frozen=True)
class StreamPlan:
    """Predicted steady-state behaviour of one stream configuration."""

    streams: int
    batch: int
    throughput_images_per_s: float
    theoretical_images_per_s: float
    cycle_us: float
    h2d_us: float
    compute_us: float
    d2h_us: float
    extra_gpu_bytes: int

    @property
    def schedule_efficiency(self) -> float:
        """Eq. 4: achieved / theoretical speed."""
        if self.theoretical_images_per_s <= 0:
            return 0.0
        return self.throughput_images_per_s / self.theoretical_images_per_s


def stream_extra_gpu_bytes(
    streams: int,
    batch: int,
    m: int,
    n: int,
    d: int = 128,
    precision: str = "fp16",
) -> int:
    """Per-configuration extra GPU memory (Table 6, column 3)."""
    if streams < 1 or batch < 1:
        raise ValueError("streams and batch must be >= 1")
    elem = dtype_bytes(precision)
    per_stream = batch * m * n * elem + batch * m * d * elem
    return FIXED_OVERHEAD_BYTES + streams * per_stream


def batch_component_times(
    spec: DeviceSpec,
    cal: KernelCalibration,
    m: int,
    n: int,
    d: int,
    batch: int,
    precision: str = "fp16",
    tensor_core: bool = False,
    pinned: bool = True,
    with_norms: bool = False,
) -> dict[str, float]:
    """Per-batch stage durations (us) for the Algorithm-2 pipeline.

    ``with_norms`` adds the Algorithm-1 N_R bytes to the transfer and
    the row-broadcast kernel to compute.
    """
    elem = dtype_bytes(precision)
    transfer_bytes = batch * m * d * elem
    compute = gemm_us(spec, cal, m, n, d, batch, precision, tensor_core)
    if with_norms:
        transfer_bytes += batch * m * elem
        compute += elementwise_us(spec, cal, batch * m * n, precision)
    compute += top2_scan_us(spec, cal, m, batch * n, precision)
    compute += elementwise_us(spec, cal, 2 * batch * n, precision)  # sqrt winners
    return {
        "h2d": h2d_time_us(spec, transfer_bytes, pinned),
        "compute": compute,
        "d2h": d2h_result_us(spec, cal, n, batch, 2, precision),
        "post": postprocess_us(cal, batch, precision, n),
    }


def plan_streams(
    spec: DeviceSpec,
    cal: KernelCalibration,
    streams: int,
    batch: int,
    m: int = 768,
    n: int = 768,
    d: int = 128,
    precision: str = "fp16",
    tensor_core: bool = False,
    pinned: bool = True,
    with_norms: bool = False,
) -> StreamPlan:
    """Steady-state throughput for ``streams`` threads/streams over
    host-resident references."""
    if streams < 1:
        raise ValueError("streams must be >= 1")
    t = batch_component_times(
        spec, cal, m, n, d, batch, precision, tensor_core, pinned, with_norms
    )
    # Single stream: everything serialises, including CPU post-processing
    # (one thread does it all).  Multi-stream: post-processing moves to
    # the other CPU workers; PCIe is fair-shared across in-flight
    # streams; compute still serialises on the device.
    if streams == 1:
        cycle = t["h2d"] + t["compute"] + t["d2h"] + t["post"]
        throughput = batch / cycle * 1e6
    else:
        cycle = streams * t["h2d"] + t["compute"] + t["d2h"]
        throughput = streams * batch / cycle * 1e6
        compute_cap = batch / (t["compute"] + t["d2h"]) * 1e6
        throughput = min(throughput, compute_cap)
    theoretical = batch / t["h2d"] * 1e6
    return StreamPlan(
        streams=streams,
        batch=batch,
        throughput_images_per_s=throughput,
        theoretical_images_per_s=theoretical,
        cycle_us=cycle,
        h2d_us=t["h2d"],
        compute_us=t["compute"],
        d2h_us=t["d2h"],
        extra_gpu_bytes=stream_extra_gpu_bytes(streams, batch, m, n, d, precision),
    )
