"""CPU-thread work partitioning (Sec. 6.2).

"Usually, all the reference feature matrices are divided equally
according to the number of enabled CPU threads."  These helpers slice a
batch list into per-thread partitions and interleave the resulting
per-thread schedules, which is how the functional engine iterates when
multiple streams are configured (the *timing* of the overlap comes from
:mod:`repro.pipeline.scheduler`).
"""

from __future__ import annotations

from typing import Sequence, TypeVar

T = TypeVar("T")

__all__ = ["partition_equally", "interleave_schedules"]


def partition_equally(items: Sequence[T], workers: int) -> list[list[T]]:
    """Split ``items`` into ``workers`` contiguous, near-equal slices.

    The first ``len(items) % workers`` slices get one extra item; no
    slice is ever more than one item larger than another.  Empty slices
    are returned when there are more workers than items.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    n = len(items)
    base, extra = divmod(n, workers)
    out: list[list[T]] = []
    start = 0
    for w in range(workers):
        size = base + (1 if w < extra else 0)
        out.append(list(items[start : start + size]))
        start += size
    return out


def interleave_schedules(partitions: Sequence[Sequence[T]]) -> list[T]:
    """Round-robin merge of per-worker schedules.

    Produces the global issue order a fair scheduler would see: worker
    0's first batch, worker 1's first batch, ..., worker 0's second, ...
    """
    out: list[T] = []
    longest = max((len(p) for p in partitions), default=0)
    for i in range(longest):
        for p in partitions:
            if i < len(p):
                out.append(p[i])
    return out
