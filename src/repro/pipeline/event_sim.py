"""Event-driven multi-stream simulation.

The analytic model in :mod:`repro.pipeline.scheduler` assumes fair-share
PCIe arbitration (what the paper's thread-per-stream CPU code actually
achieves, per Table 6).  This module simulates the same workload on the
event-driven device (exclusive engines, streams truly pipelining) —
the *upper bound* a perfectly asynchronous implementation could reach.
The gap between the two is an ablation of the paper's scheduling
design: `ablation: stream scheduling` in the benchmark suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpusim.calibration import KernelCalibration
from ..gpusim.device import DeviceSpec
from ..gpusim.engine_model import GPUDevice
from ..gpusim.kernels import dtype_bytes
from .worker import partition_equally

__all__ = ["EventSimResult", "simulate_stream_pipeline"]


@dataclass(frozen=True)
class EventSimResult:
    """Outcome of one event-driven pipeline simulation."""

    streams: int
    batches: int
    batch_size: int
    elapsed_us: float
    throughput_images_per_s: float
    engine_busy_us: dict


def simulate_stream_pipeline(
    spec: DeviceSpec,
    cal: KernelCalibration,
    streams: int,
    n_batches: int,
    batch: int,
    m: int = 768,
    n: int = 768,
    d: int = 128,
    precision: str = "fp16",
    pinned: bool = True,
    host_resident: bool = True,
) -> EventSimResult:
    """Simulate ``n_batches`` reference batches through ``streams``
    CUDA streams on the event-driven device.

    Each stream processes its partition in-order: (H2D if the batch is
    host-resident) -> batched GEMM -> top-2 scan -> sqrt -> D2H result.
    Engines (one H2D, one compute, one D2H) serialise across streams,
    so copy/compute overlap emerges naturally.
    """
    if streams < 1 or n_batches < 1 or batch < 1:
        raise ValueError("streams, n_batches and batch must be >= 1")
    device = GPUDevice(spec, cal)
    stream_objs = [device.create_stream(f"s{i}") for i in range(streams)]
    partitions = partition_equally(list(range(n_batches)), streams)
    transfer_bytes = batch * m * d * dtype_bytes(precision)

    # Interleave issue order round-robin across streams (the CPU threads
    # all enqueue concurrently); in-stream order is preserved by the
    # stream semantics regardless of issue order.
    longest = max(len(p) for p in partitions)
    for i in range(longest):
        for s, part in enumerate(partitions):
            if i >= len(part):
                continue
            stream = stream_objs[s]
            if host_resident:
                device.h2d(transfer_bytes, stream=stream, pinned=pinned)
            device.gemm(m, n, d, batch=batch, dtype=precision, stream=stream)
            device.top2_scan(m, batch * n, dtype=precision, stream=stream)
            device.elementwise(2 * batch * n, dtype=precision, stream=stream, step="sqrt")
            device.d2h_result(n, batch=batch, dtype=precision, stream=stream)

    elapsed = device.synchronize()
    images = n_batches * batch
    return EventSimResult(
        streams=streams,
        batches=n_batches,
        batch_size=batch,
        elapsed_us=elapsed,
        throughput_images_per_s=images / elapsed * 1e6 if elapsed > 0 else 0.0,
        engine_busy_us=device.profiler.as_dict(),
    )
