"""Multi-stream scheduling substrate: the Table-6 overlap model and the
CPU-thread partitioning helpers."""

from .event_sim import EventSimResult, simulate_stream_pipeline
from .scheduler import (
    FIXED_OVERHEAD_BYTES,
    StreamPlan,
    batch_component_times,
    plan_streams,
    stream_extra_gpu_bytes,
)
from .worker import interleave_schedules, partition_equally

__all__ = [
    "EventSimResult",
    "FIXED_OVERHEAD_BYTES",
    "StreamPlan",
    "simulate_stream_pipeline",
    "batch_component_times",
    "interleave_schedules",
    "partition_equally",
    "plan_streams",
    "stream_extra_gpu_bytes",
]
