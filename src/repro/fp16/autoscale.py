"""Scale-factor selection.

The paper observes (Table 2) a wide plateau of safe scale factors
(2^-2 .. 2^-12 for raw SIFT) and fixes 2^-7 in practice.  This module
automates the choice: given a sample of feature matrices it finds the
largest power-of-two scale that cannot overflow, then backs off a safety
margin toward the middle of the plateau.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .convert import FP16_MAX

__all__ = ["AutoscaleResult", "choose_scale_factor", "max_safe_scale"]


@dataclass(frozen=True)
class AutoscaleResult:
    """Outcome of :func:`choose_scale_factor`."""

    scale: float
    log2_scale: int
    max_dot: float
    max_norm: float
    headroom_bits: int


def _max_quantities(samples: list[np.ndarray]) -> tuple[float, float]:
    """Worst-case dot product and squared norm over sample features.

    The worst dot product between any two unit-direction-compatible
    descriptors is bounded by the product of the two largest norms
    (Cauchy-Schwarz); for identical images (the matching case that
    actually occurs in identification) the bound is attained, so it is
    the right overflow predictor.
    """
    max_norm = 0.0
    for f in samples:
        f = np.asarray(f, dtype=np.float64)
        if f.ndim != 2:
            raise ValueError(f"feature matrices must be 2-D, got {f.shape}")
        if f.size == 0:
            continue
        norms = np.einsum("dc,dc->c", f, f)
        max_norm = max(max_norm, float(norms.max()))
    return max_norm, max_norm  # max dot == max squared norm at equality


def max_safe_scale(samples: list[np.ndarray]) -> float:
    """Largest scale ``s`` with ``s^2 * max_dot <= FP16_MAX``."""
    max_dot, _ = _max_quantities(samples)
    if max_dot <= 0:
        return 1.0
    return float(np.sqrt(FP16_MAX / max_dot))


def choose_scale_factor(samples: list[np.ndarray], margin_bits: int = 5) -> AutoscaleResult:
    """Pick a power-of-two scale factor with ``margin_bits`` of headroom.

    ``margin_bits=5`` reproduces the paper's practical choice: for
    512-normalized SIFT the safe boundary is 2^-2 and the paper ships
    2^-7.
    """
    if margin_bits < 0:
        raise ValueError("margin_bits must be non-negative")
    max_dot, max_norm = _max_quantities(samples)
    safe = max_safe_scale(samples)
    log2_safe = int(np.floor(np.log2(safe))) if safe > 0 else 0
    log2_scale = log2_safe - margin_bits
    return AutoscaleResult(
        scale=float(2.0**log2_scale),
        log2_scale=log2_scale,
        max_dot=max_dot,
        max_norm=max_norm,
        headroom_bits=margin_bits,
    )
