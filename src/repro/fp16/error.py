"""Compression-error metric (Eq. 2 of the paper).

``comp_error`` averages, over every reference/query feature pair, the
relative error between the full-precision distance and the distance
computed from scaled FP16 features.  Table 2 evaluates it over 1,000
image pairs; :mod:`repro.bench.experiments` reproduces that table.
"""

from __future__ import annotations

import numpy as np

from ..errors import HalfPrecisionOverflowError
from .convert import check_matmul_overflow, to_scaled_fp16

__all__ = [
    "pairwise_distances",
    "fp16_accumulated_dot",
    "fp16_pairwise_distances",
    "compression_error",
]

_EPS = 1e-12


def pairwise_distances(r: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Full-precision Euclidean distance matrix between the columns of
    ``R`` (d x m) and ``Q`` (d x n); returns (m, n)."""
    r = np.asarray(r, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if r.ndim != 2 or q.ndim != 2 or r.shape[0] != q.shape[0]:
        raise ValueError(f"incompatible shapes {r.shape} and {q.shape}")
    nr = np.einsum("dm,dm->m", r, r)
    nq = np.einsum("dn,dn->n", q, q)
    sq = nr[:, None] + nq[None, :] - 2.0 * (r.T @ q)
    np.maximum(sq, 0.0, out=sq)
    return np.sqrt(sq)


def fp16_accumulated_dot(r16: np.ndarray, q16: np.ndarray, round_every: int = 1) -> np.ndarray:
    """``R^T Q`` with the accumulator rounded to FP16 as HGEMM does.

    The running sum is rounded to ``float16`` after every
    ``round_every`` rank-1 updates (1 = faithful sequential FP16
    accumulation).  This accumulation noise — roughly
    ``sqrt(d) * eps_fp16`` relative — is what dominates the paper's
    0.1 % compression-error plateau, an order of magnitude above pure
    input-quantization error.
    """
    r16 = np.asarray(r16, dtype=np.float16)
    q16 = np.asarray(q16, dtype=np.float16)
    if round_every < 1:
        raise ValueError("round_every must be >= 1")
    d = r16.shape[0]
    acc = np.zeros((r16.shape[1], q16.shape[1]), dtype=np.float32)
    rv = r16.astype(np.float32)
    qv = q16.astype(np.float32)
    for start in range(0, d, round_every):
        stop = min(start + round_every, d)
        acc += rv[start:stop].T @ qv[start:stop]
        # Round the accumulator to FP16 (the register precision).
        acc = acc.astype(np.float16).astype(np.float32)
    return acc


def fp16_pairwise_distances(
    r: np.ndarray, q: np.ndarray, scale: float, round_every: int = 1
) -> np.ndarray:
    """Distance matrix computed the way the FP16 engine computes it.

    Features are scaled and quantized to FP16, the similarity matrix is
    accumulated in FP16 (``round_every`` controls the rounding cadence,
    see :func:`fp16_accumulated_dot`), and distances are rescaled by
    ``1/s``.  Raises :class:`HalfPrecisionOverflowError` on overflow,
    matching Table 2's "overflow" cells.
    """
    r16 = to_scaled_fp16(r, scale)
    q16 = to_scaled_fp16(q, scale)
    check_matmul_overflow(r16, q16)
    rv = r16.values.astype(np.float32)
    qv = q16.values.astype(np.float32)
    # FP16 storage of the norm vectors and the GEMM output (the adds of
    # Algorithm 1 run in FP16 registers).
    nr = np.einsum("dm,dm->m", rv, rv).astype(np.float16).astype(np.float32)
    nq = np.einsum("dn,dn->n", qv, qv).astype(np.float16).astype(np.float32)
    prod = fp16_accumulated_dot(r16.values, q16.values, round_every)
    sq = nr[:, None] + nq[None, :] - 2.0 * prod
    np.maximum(sq, 0.0, out=sq)
    return np.sqrt(sq) / np.float32(scale)


def compression_error(r: np.ndarray, q: np.ndarray, scale: float) -> float:
    """Eq. 2: mean relative distance error of the FP16 path vs FP32.

    Pairs whose true distance is (numerically) zero are excluded from
    the average — a self-match has no meaningful relative error.
    """
    exact = pairwise_distances(r, q)
    approx = fp16_pairwise_distances(r, q, scale).astype(np.float64)
    mask = exact > _EPS
    if not np.any(mask):
        return 0.0
    rel = np.abs(exact[mask] - approx[mask]) / exact[mask]
    return float(rel.mean())
