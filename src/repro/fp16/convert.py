"""Scale-factor FP16 conversion (Sec. 4.2).

FP16 has a narrow numeric range, so feature matrices are multiplied by a
scale factor ``s`` before conversion; squared distances computed from the
scaled features equal ``s^2`` times the true squared distances and are
rescaled on the host.  Too large an ``s`` overflows the similarity-matrix
computation; too small an ``s`` pushes descriptor entries into the
subnormal range and inflates quantization error (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import HalfPrecisionOverflowError

__all__ = ["FP16_MAX", "ScaledFP16", "to_scaled_fp16", "check_matmul_overflow"]

FP16_MAX = float(np.finfo(np.float16).max)


@dataclass(frozen=True)
class ScaledFP16:
    """An FP16 feature matrix together with its scale factor.

    ``values`` stores ``float16(scale * original)``; distance math on
    these values must divide squared quantities by ``scale**2``.
    """

    values: np.ndarray
    scale: float

    def __post_init__(self) -> None:
        if self.values.dtype != np.float16:
            raise TypeError("ScaledFP16.values must be float16")
        if not (self.scale > 0):
            raise ValueError("scale factor must be positive")

    @property
    def inv_scale_sq(self) -> float:
        """Multiply scaled squared distances by this to recover units."""
        return 1.0 / (self.scale * self.scale)

    def unscaled(self) -> np.ndarray:
        """Dequantize back to FP32 (lossy round-trip)."""
        return self.values.astype(np.float32) / np.float32(self.scale)

    @property
    def nbytes(self) -> int:
        return self.values.nbytes


def to_scaled_fp16(
    features: np.ndarray,
    scale: float,
    check_overflow: bool = True,
) -> ScaledFP16:
    """Convert FP32 features to scaled FP16.

    Raises :class:`HalfPrecisionOverflowError` if any scaled *element*
    exceeds the FP16 range (matmul overflow is checked separately, since
    it depends on both operands; see :func:`check_matmul_overflow`).
    """
    features = np.asarray(features, dtype=np.float32)
    scaled = features * np.float32(scale)
    if check_overflow:
        max_abs = float(np.max(np.abs(scaled))) if scaled.size else 0.0
        if max_abs > FP16_MAX:
            raise HalfPrecisionOverflowError(scale, max_abs)
    return ScaledFP16(values=scaled.astype(np.float16), scale=float(scale))


def check_matmul_overflow(r: ScaledFP16, q: ScaledFP16) -> None:
    """Raise if ``R^T Q`` would overflow under FP16 accumulation.

    Uses the non-negativity of SIFT descriptors: partial sums are
    monotone, so the worst intermediate is the largest final dot
    product.  The factor 2 of ``-2 R^T Q`` is applied *after* the GEMM
    via the ``alpha`` parameter, so the GEMM itself sees the raw dot.
    Also checks the squared-norm vectors, which are stored in FP16 too.
    """
    if r.scale != q.scale:
        raise ValueError(f"mismatched scale factors: {r.scale} vs {q.scale}")
    rv = r.values.astype(np.float32)
    qv = q.values.astype(np.float32)
    if np.any(rv < 0) or np.any(qv < 0):
        # Conservative: bound by |R|^T |Q|.
        dots = np.abs(rv).T @ np.abs(qv)
    else:
        dots = rv.T @ qv
    worst = float(dots.max()) if dots.size else 0.0
    norms_worst = max(
        float(np.einsum("dc,dc->c", rv, rv).max()) if rv.size else 0.0,
        float(np.einsum("dc,dc->c", qv, qv).max()) if qv.size else 0.0,
    )
    worst = max(worst, norms_worst)
    if worst > FP16_MAX:
        raise HalfPrecisionOverflowError(r.scale, worst)
