"""Half-precision toolkit: scaled conversion, overflow detection,
compression error (Eq. 2), and automatic scale-factor selection."""

from .autoscale import AutoscaleResult, choose_scale_factor, max_safe_scale
from .convert import FP16_MAX, ScaledFP16, check_matmul_overflow, to_scaled_fp16
from .error import compression_error, fp16_pairwise_distances, pairwise_distances

__all__ = [
    "AutoscaleResult",
    "FP16_MAX",
    "ScaledFP16",
    "check_matmul_overflow",
    "choose_scale_factor",
    "compression_error",
    "fp16_pairwise_distances",
    "max_safe_scale",
    "pairwise_distances",
    "to_scaled_fp16",
]
