"""Cost-model calibration constants.

Every constant here is *anchored* to a measurement published in the paper
(the anchor is cited next to each value).  The kernel cost models in
:mod:`repro.gpusim.kernels` combine these constants with first-principles
scaling laws (FLOPs, bytes, thread counts), so the simulator *predicts*
all the cells the paper does not state explicitly — those predictions are
what EXPERIMENTS.md compares against the paper.

The canonical workload used for anchoring is the paper's standard setting
``m = n = 768`` SIFT features, ``d = 128`` dimensions, i.e. one image
match costs ``2 * 768 * 768 * 128 ~= 1.51e8`` FLOPs of GEMM work.

V100 constants are derived from the P100 anchors via datasheet ratios
(peak FLOPS, SM count, memory bandwidth); Table 4's published V100
efficiency (65.7 % HGEMM-only) pins the FP16 GEMM ceiling directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .device import DeviceSpec, TESLA_P100

__all__ = ["GemmCalibration", "HammingCalibration", "ScanCalibration", "KernelCalibration"]


@dataclass(frozen=True)
class GemmCalibration:
    """Saturating-efficiency model for GEMM.

    ``efficiency(W) = eff_max * W / (W + w_half)`` where ``W`` is the
    total FLOP count of the call (batched GEMMs aggregate their batch).
    ``eff_max`` is the large-matrix ceiling; ``w_half`` is the work at
    which half the ceiling is reached (models tile/occupancy ramp-up —
    small matrices leave SMs idle, which is exactly the paper's Sec. 5.2
    observation that batch-1 GEMM reaches only a fraction of peak).
    """

    eff_max: float
    w_half_flops: float

    def efficiency(self, work_flops: float) -> float:
        if work_flops <= 0:
            return 0.0
        return self.eff_max * work_flops / (work_flops + self.w_half_flops)


@dataclass(frozen=True)
class HammingCalibration:
    """Integer XOR/popcount model for the cascade Hamming prefilter.

    The prefilter compares packed uint64 signatures pairwise: each
    word-pair costs ``int_ops_per_word`` integer instructions (XOR,
    ``__popc``, accumulate — the per-column threshold reduction is
    folded into the same factor).  Integer ALU throughput on
    Pascal/Volta is tied to the FP32 pipelines, so peak is modelled as
    ``peak_int_fraction`` of the FP32 peak: popcount issues one op per
    word but shares issue slots with the address math, landing near
    half rate.  The same saturating-efficiency ramp as
    :class:`GemmCalibration` applies (small candidate sets cannot fill
    the SMs), and a bandwidth wall covers the signature reads.
    """

    eff_max: float = 0.60
    w_half_iops: float = 2.0e7
    int_ops_per_word: float = 3.0
    peak_int_fraction: float = 0.5
    bw_fraction: float = 0.60

    def efficiency(self, work_iops: float) -> float:
        if work_iops <= 0:
            return 0.0
        return self.eff_max * work_iops / (work_iops + self.w_half_iops)


@dataclass(frozen=True)
class ScanCalibration:
    """Model for the one-pass top-2 scan kernel (Sec. 4.1).

    One GPU thread scans one column of the similarity matrix (``m``
    elements), keeping the two smallest values in registers.  At low
    occupancy the kernel is latency bound: each element costs
    ``cost_ns`` (FP16 pays a half-precision intrinsic penalty — the
    paper's Sec. 4.2 reports the FP16 scan 70 % *slower* at batch 1).
    Parallelism saturates at ``p_sat`` resident threads; past that the
    kernel approaches ``bw_fraction`` of device bandwidth, where FP16's
    halved footprint wins (Table 3: 3.82 us/img at batch 1024).
    """

    cost_fp32_ns: float
    cost_fp16_ns: float
    p_sat_threads: float
    bw_fraction: float

    def cost_ns(self, dtype: str) -> float:
        return self.cost_fp16_ns if dtype == "fp16" else self.cost_fp32_ns

    def effective_parallelism(self, columns: int) -> float:
        """Resident-thread count actually achieved with ``columns`` work items."""
        if columns <= 0:
            return 1.0
        return columns / (1.0 + columns / self.p_sat_threads)


@dataclass(frozen=True)
class KernelCalibration:
    """All per-device cost-model constants, bundled.

    Anchors (Nvidia Tesla P100, m = n = 768, d = 128):

    * GEMM FP32 batch 1 = 35.22 us, FP16 batch 1 = 24.92 us (Table 1);
      FP16 batch 1024 = 11.58 us/img = 67.9 % of 18.7 TFLOPS (Table 3,
      Sec. 5.3).
    * top-2 scan FP32 batch 1 = 40.20 us, FP16 batch 1 = 68.32 us
      (Table 1); FP16 batch 1024 = 3.82 us/img (Table 3).
    * modified insertion sort (Garcia et al. [9]) = 221.5 us (Table 1).
    * D2H result copy = 47.32 us at batch 1 and 2.72 us/img at batch
      1024 (Tables 1 and 3) -> 45 us initiation latency + ~3.5 GB/s
      effective bandwidth for the strided top-2 result gather.
    * CPU post-processing = 12.60 us FP32 / 17.18 us FP16 at batch 1,
      3.85 us/img at batch 1024 (Tables 1 and 3).
    * elementwise adds: add-N_R 8.94 us, add-N_Q+sqrt 4.71 us (Table 1).
    """

    gemm_fp32: GemmCalibration
    gemm_fp16: GemmCalibration
    gemm_tensor: GemmCalibration
    scan: ScanCalibration
    #: integer XOR/popcount model for the cascade Hamming prefilter;
    #: ``w_half`` scales with FP32 peak in :meth:`for_device`.
    hamming: HammingCalibration = field(default_factory=HammingCalibration)
    #: per-element cost of the modified insertion sort baseline (ns);
    #: anchored so the 768x768 batch-1 sort lands on 221.5 us (Table 1).
    insertion_sort_ns: float = 266.5
    #: fraction of peak bandwidth reached by in-place elementwise kernels
    #: (anchored on Table 1 step 4: 8.94 us FP32 / 8.98 us FP16 for the
    #: 768x768 add-N_R; the FP16 kernel moves half the bytes in the same
    #: time, i.e. the half-precision conversion halves its efficiency).
    elementwise_eff_fp32: float = 0.72
    elementwise_eff_fp16: float = 0.33
    #: D2H result-gather transfer model (latency-dominated small copies).
    d2h_result_latency_us: float = 45.0
    d2h_result_gbs: float = 3.5
    #: CPU post-processing model: per-image cost decays with batch because
    #: more host parallelism can be exploited (Sec. 5.3), flooring at
    #: ``post_floor_us``.
    post_floor_us: float = 1.945
    post_batch1_fp32_us: float = 12.60
    post_batch1_fp16_us: float = 17.18
    post_parallel_cap: float = 8.0
    #: extra per-query-feature FP32->FP16 conversion charged on CPU when
    #: the engine stores FP16 (Sec. 4.2 reports +36.3 % post-processing).
    fp16_convert_us_per_kfeat: float = 5.96

    @staticmethod
    def for_device(spec: DeviceSpec) -> "KernelCalibration":
        """Build a calibration for ``spec`` from the P100 anchors.

        The anchor workload is one 768 x 768 x 128 GEMM, i.e.
        ``F1 = 1.51e8`` FLOPs.  Scaling rules:

        * ``w_half`` scales with peak FLOPS (a faster card needs more
          work to fill its pipelines).
        * scan ``p_sat`` scales with SM count; per-element latency cost
          scales inversely with core clock (approximated as equal across
          P100/V100, whose boost clocks differ by < 5 %).
        """
        f1 = 2.0 * 768 * 768 * 128  # 1.51e8 FLOPs, the anchor GEMM

        # P100 anchors (see class docstring for derivations):
        # FP16: launch 4 us => compute 20.92 us at batch 1 => 7.22 TFLOPS
        # => eff 0.386; batch-1024 eff 0.679 (Sec. 5.3) => eff_max 0.70
        # after removing launch overhead, w_half = F1*(0.70/0.386 - 1).
        p100_fp16 = GemmCalibration(eff_max=0.70, w_half_flops=f1 * 0.814)
        # FP32: 35.22 us - 4 us launch => 4.84 TFLOPS => eff 0.52 of 9.3.
        p100_fp32 = GemmCalibration(eff_max=0.62, w_half_flops=f1 * 0.192)

        if spec.fp16_tflops <= 0:
            raise ValueError("device must support FP16 (paper requires it)")

        flops_ratio_16 = spec.fp16_tflops / TESLA_P100.fp16_tflops
        flops_ratio_32 = spec.fp32_tflops / TESLA_P100.fp32_tflops
        sm_ratio = spec.sm_count / TESLA_P100.sm_count

        gemm_fp16 = GemmCalibration(
            # Table 4: V100 HGEMM-only efficiency 65.7 % vs P100 67.9 %
            # at batch 1024; model both with the same asymptote scaled by
            # the (published) achieved fraction.
            eff_max=0.70 if spec.name == TESLA_P100.name else 0.677,
            w_half_flops=p100_fp16.w_half_flops * flops_ratio_16,
        )
        gemm_fp32 = GemmCalibration(
            eff_max=p100_fp32.eff_max,
            w_half_flops=p100_fp32.w_half_flops * flops_ratio_32,
        )
        # Tensor cores: Table 4 reports 11.4 % whole-pipeline efficiency
        # on V100 and a 1.3x end-to-end gain at batch 1024 but only 1.15x
        # at batch 1 => low ceiling, slow ramp.
        gemm_tensor = GemmCalibration(
            eff_max=0.28,
            w_half_flops=f1 * 1.5 * max(spec.tensor_tflops, 1.0) / 112.0,
        )

        scan = ScanCalibration(
            # Anchors (after removing the 4 us launch): FP32 batch 1 =
            # 40.2 us, FP16 batch 1 = 68.3 us, FP16 batch 1024 =
            # 3.82 us/img => p_sat ~= 12,262 resident threads on P100.
            cost_fp32_ns=44.4,
            cost_fp16_ns=78.8,
            p_sat_threads=12262.0 * sm_ratio,
            bw_fraction=0.50,
        )

        return KernelCalibration(
            gemm_fp32=gemm_fp32,
            gemm_fp16=gemm_fp16,
            gemm_tensor=gemm_tensor,
            scan=scan,
            # Integer throughput tracks the FP32 pipelines, so the ramp
            # midpoint scales with FP32 peak (like the GEMM w_half).
            hamming=HammingCalibration(w_half_iops=2.0e7 * flops_ratio_32),
            # The result gather is a device-side strided copy; its
            # effective rate scales with HBM bandwidth (3.5 GB/s anchor
            # on P100's 732 GB/s, Table 1 step 8).
            d2h_result_gbs=3.5 * spec.mem_bandwidth_gbs / TESLA_P100.mem_bandwidth_gbs,
        )

    def gemm(self, dtype: str, tensor_core: bool = False) -> GemmCalibration:
        if tensor_core:
            return self.gemm_tensor
        return self.gemm_fp16 if dtype == "fp16" else self.gemm_fp32

    def elementwise_eff(self, dtype: str) -> float:
        return self.elementwise_eff_fp16 if dtype == "fp16" else self.elementwise_eff_fp32
