"""Simulated time base.

The simulator measures everything in microseconds (``us``), the unit the
paper's tables use.  :class:`SimClock` is a monotonically advancing
watermark shared by all engines of one device (and, in the distributed
system, by all devices of one node).
"""

from __future__ import annotations

__all__ = ["SimClock", "us_to_s", "s_to_us"]


def us_to_s(us: float) -> float:
    """Convert simulated microseconds to seconds."""
    return us * 1e-6


def s_to_us(seconds: float) -> float:
    """Convert seconds to simulated microseconds."""
    return seconds * 1e6


class SimClock:
    """A monotone simulated clock.

    ``now`` is the latest completion time observed anywhere on the
    device.  Engines advance it via :meth:`advance_to`; it never moves
    backwards (attempting to do so is a no-op, not an error, because
    independent engines complete out of order).
    """

    __slots__ = ("_now_us",)

    def __init__(self, start_us: float = 0.0) -> None:
        if start_us < 0:
            raise ValueError("clock cannot start before t=0")
        self._now_us = float(start_us)

    @property
    def now_us(self) -> float:
        return self._now_us

    def advance_to(self, t_us: float) -> float:
        """Move the watermark to ``t_us`` if it is later; return ``now``."""
        if t_us > self._now_us:
            self._now_us = float(t_us)
        return self._now_us

    def reset(self) -> None:
        """Rewind to t=0 (used between independent experiments)."""
        self._now_us = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now_us:.3f}us)"
