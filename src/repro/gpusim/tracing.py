"""Timeline tracing for the simulated device.

Attach a :class:`TimelineTracer` to a :class:`GPUDevice` and every
submitted operation is recorded as ``(engine, stream, step, start,
end)``.  The trace can be inspected programmatically (overlap analysis,
engine utilisation) or exported as Chrome ``chrome://tracing`` /
Perfetto JSON — the tool GPU engineers would use on the real system's
nvprof output, reproduced for the simulator.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field

from .engine_model import GPUDevice

__all__ = ["TraceEvent", "TimelineTracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One operation on the simulated timeline."""

    engine: str
    stream: str
    step: str
    start_us: float
    end_us: float

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us


@dataclass
class TimelineTracer:
    """Records every ``GPUDevice.submit`` while attached."""

    events: list[TraceEvent] = field(default_factory=list)

    def attach(self, device: GPUDevice) -> None:
        """Wrap the device's ``submit`` to capture events.

        Only one tracer may be attached to a device at a time; attach
        is idempotent for the same tracer.
        """
        if getattr(device, "_tracer", None) is self:
            return
        if getattr(device, "_tracer", None) is not None:
            raise ValueError("device already has a tracer attached")
        original = device.submit

        def traced_submit(engine, duration_us, stream=None, step=None):
            end = original(engine, duration_us, stream=stream, step=step)
            resolved = device._resolve_stream(stream)
            self.events.append(
                TraceEvent(
                    engine=engine,
                    stream=resolved.name,
                    step=step or engine,
                    start_us=end - duration_us,
                    end_us=end,
                )
            )
            return end

        device.submit = traced_submit  # type: ignore[method-assign]
        device._tracer = self  # type: ignore[attr-defined]
        self._device = device
        self._original_submit = original

    def detach(self) -> None:
        """Restore the device's original ``submit``.

        When ``attach`` wrapped the plain class method (the common
        case), the shadowing instance attribute is *deleted* rather
        than re-assigned: assigning the captured bound method back
        would leave a permanent instance attribute pinning this
        tracer's closure chain alive, and a later ``attach`` would
        capture that stale binding — detach/attach cycles must leave
        the device exactly as constructed.
        """
        device = getattr(self, "_device", None)
        if device is None:
            return
        original = self._original_submit
        if original == type(device).submit.__get__(device):
            # we shadowed the class method: remove the shadow entirely
            device.__dict__.pop("submit", None)
        else:
            # someone else's instance-level submit was wrapped (e.g. a
            # stacked instrumentation layer): restore that binding
            device.submit = original  # type: ignore[method-assign]
        device._tracer = None  # type: ignore[attr-defined]
        self._device = None
        self._original_submit = None

    @contextmanager
    def attached(self, device: GPUDevice):
        """Scope-bound attachment: ``with tracer.attached(device):``
        records submissions inside the block and always detaches on
        exit, even when the block raises.  Yields the tracer."""
        self.attach(device)
        try:
            yield self
        finally:
            self.detach()

    # ------------------------------------------------------------------
    # analysis
    # ------------------------------------------------------------------
    def engine_busy_us(self) -> dict[str, float]:
        """Total busy time per engine."""
        busy: dict[str, float] = {}
        for event in self.events:
            busy[event.engine] = busy.get(event.engine, 0.0) + event.duration_us
        return busy

    def engine_utilisation(self) -> dict[str, float]:
        """Busy fraction of the makespan per engine."""
        if not self.events:
            return {}
        makespan = max(e.end_us for e in self.events)
        if makespan <= 0:
            return {engine: 0.0 for engine in self.engine_busy_us()}
        return {engine: busy / makespan for engine, busy in self.engine_busy_us().items()}

    def overlap_us(self, engine_a: str, engine_b: str) -> float:
        """Total time two engines were busy simultaneously.

        This is the quantity the multi-stream design maximises: H2D
        copy overlapped with compute (Sec. 6.2).
        """
        intervals_a = sorted(
            (e.start_us, e.end_us) for e in self.events if e.engine == engine_a
        )
        intervals_b = sorted(
            (e.start_us, e.end_us) for e in self.events if e.engine == engine_b
        )
        total = 0.0
        i = j = 0
        while i < len(intervals_a) and j < len(intervals_b):
            a0, a1 = intervals_a[i]
            b0, b1 = intervals_b[j]
            total += max(0.0, min(a1, b1) - max(a0, b0))
            if a1 <= b1:
                i += 1
            else:
                j += 1
        return total

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_chrome_trace(self) -> str:
        """Chrome tracing / Perfetto JSON (complete events, 'X' phase)."""
        engines = sorted({e.engine for e in self.events})
        tid = {engine: i + 1 for i, engine in enumerate(engines)}
        records = [
            {
                "name": event.step,
                "cat": event.stream,
                "ph": "X",
                "ts": event.start_us,
                "dur": event.duration_us,
                "pid": 1,
                "tid": tid[event.engine],
                "args": {"stream": event.stream},
            }
            for event in self.events
        ]
        records.extend(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": t,
                "args": {"name": engine},
            }
            for engine, t in tid.items()
        )
        return json.dumps({"traceEvents": records, "displayTimeUnit": "ms"})
