"""The simulated GPU device: engines, streams, memory, profiling.

A :class:`GPUDevice` models the resources a CUDA device exposes:

* one **compute** engine — kernels from all streams serialize on it
  (a conservative first-order model of SM sharing; the paper's kernels
  are each large enough to fill the device, so concurrent kernels would
  time-slice rather than truly overlap);
* one **h2d** and one **d2h** copy engine — transfers overlap compute,
  which is what multi-stream scheduling exploits (Sec. 6.2);
* one **cpu** engine for the host post-processing stage (the paper's
  single search thread serializes it into the loop, Table 3).

Time is simulated: an operation on engine *e*, stream *s* starts at
``max(engine_free[e], stream_ready[s])`` and occupies both until it
ends.  This reproduces copy/compute overlap, in-stream ordering, and
engine contention without a full event queue.
"""

from __future__ import annotations

from typing import Optional

from ..errors import InvalidStreamError
from .calibration import KernelCalibration
from .clock import SimClock
from .device import DeviceSpec
from .kernels import (
    d2h_result_us,
    dtype_bytes,
    elementwise_us,
    gemm_us,
    hamming_us,
    insertion_sort_us,
    norm_vector_us,
    postprocess_us,
    result_bytes,
    top2_scan_us,
)
from .memory import Allocation, MemoryPool
from .pcie import h2d_time_us
from .profiler import StepProfiler
from .stream import Event, Stream

__all__ = ["GPUDevice"]

_ENGINES = ("compute", "h2d", "d2h", "cpu")

_next_device_id = 0


class GPUDevice:
    """One simulated GPU card.

    Parameters
    ----------
    spec:
        Hardware description (:data:`repro.gpusim.TESLA_P100`, ...).
    calibration:
        Kernel cost constants; defaults to
        :meth:`KernelCalibration.for_device`.
    reserved_bytes:
        Device memory reserved for engine intermediates (Sec. 8 reserves
        4 GB of each 16 GB card).
    """

    def __init__(
        self,
        spec: DeviceSpec,
        calibration: Optional[KernelCalibration] = None,
        reserved_bytes: int = 0,
    ) -> None:
        global _next_device_id
        _next_device_id += 1
        self.device_id = _next_device_id
        self.spec = spec
        self.cal = calibration or KernelCalibration.for_device(spec)
        self.memory = MemoryPool(spec.mem_bytes, name=f"{spec.name}#{self.device_id}",
                                 reserved_bytes=reserved_bytes)
        self.clock = SimClock()
        self.profiler = StepProfiler()
        self._engine_free: dict[str, float] = {e: 0.0 for e in _ENGINES}
        self.default_stream = Stream(self.device_id, name="default")
        self._streams: list[Stream] = [self.default_stream]

    # ------------------------------------------------------------------
    # streams & raw submission
    # ------------------------------------------------------------------
    def create_stream(self, name: str = "") -> Stream:
        stream = Stream(self.device_id, name=name)
        self._streams.append(stream)
        return stream

    def _resolve_stream(self, stream: Optional[Stream]) -> Stream:
        if stream is None:
            return self.default_stream
        if stream.device_id != self.device_id:
            raise InvalidStreamError(
                f"stream {stream.name!r} belongs to device {stream.device_id}, "
                f"not device {self.device_id}"
            )
        return stream

    def submit(
        self,
        engine: str,
        duration_us: float,
        stream: Optional[Stream] = None,
        step: Optional[str] = None,
    ) -> float:
        """Enqueue an operation; returns its completion time (us).

        The operation starts when both the engine and the stream are
        free, and holds both for ``duration_us``.
        """
        if engine not in self._engine_free:
            raise ValueError(f"unknown engine {engine!r}; expected one of {_ENGINES}")
        if duration_us < 0:
            raise ValueError("duration must be non-negative")
        s = self._resolve_stream(stream)
        start = max(self._engine_free[engine], s.ready_at_us)
        end = start + duration_us
        self._engine_free[engine] = end
        s.ready_at_us = end
        s.ops_issued += 1
        self.clock.advance_to(end)
        if step is not None:
            self.profiler.add(step, duration_us)
        return end

    def synchronize(self) -> float:
        """Wait for all engines/streams; returns the elapsed time (us)."""
        t = self.elapsed_us()
        for e in self._engine_free:
            self._engine_free[e] = t
        for s in self._streams:
            s.ready_at_us = t
        return t

    def elapsed_us(self) -> float:
        latest = max(self._engine_free.values(), default=0.0)
        latest = max([latest] + [s.ready_at_us for s in self._streams])
        return self.clock.advance_to(latest)

    def reset_timing(self) -> None:
        """Rewind all simulated time (memory contents are untouched)."""
        self.clock.reset()
        for e in self._engine_free:
            self._engine_free[e] = 0.0
        for s in self._streams:
            s.ready_at_us = 0.0
        self.profiler.reset()

    # ------------------------------------------------------------------
    # typed operations (cost models + profiling)
    # ------------------------------------------------------------------
    def h2d(
        self,
        nbytes: int,
        stream: Optional[Stream] = None,
        pinned: bool = True,
        step: str = "H2D copy",
    ) -> float:
        """Host -> device feature transfer."""
        return self.submit("h2d", h2d_time_us(self.spec, nbytes, pinned), stream, step)

    def d2h_result(
        self,
        n: int,
        batch: int,
        k: int = 2,
        dtype: str = "fp16",
        stream: Optional[Stream] = None,
        step: str = "D2H copy",
    ) -> float:
        """Step-8 result gather (top-k distances + indices)."""
        dur = d2h_result_us(self.spec, self.cal, n, batch, k, dtype)
        return self.submit("d2h", dur, stream, step)

    def gemm(
        self,
        m: int,
        n: int,
        k: int,
        batch: int = 1,
        dtype: str = "fp16",
        tensor_core: bool = False,
        stream: Optional[Stream] = None,
        step: str = "GEMM",
    ) -> float:
        dur = gemm_us(self.spec, self.cal, m, n, k, batch, dtype, tensor_core)
        return self.submit("compute", dur, stream, step)

    def hamming_prefilter(
        self,
        m: int,
        n: int,
        words: int,
        batch: int = 1,
        stream: Optional[Stream] = None,
        step: str = "Hamming prefilter",
    ) -> float:
        """Cascade XOR/popcount prune ahead of the exact GEMM."""
        dur = hamming_us(self.spec, self.cal, m, n, words, batch)
        return self.submit("compute", dur, stream, step)

    def top2_scan(
        self,
        m: int,
        columns: int,
        dtype: str = "fp16",
        stream: Optional[Stream] = None,
        step: str = "Top-2 sort",
    ) -> float:
        dur = top2_scan_us(self.spec, self.cal, m, columns, dtype)
        return self.submit("compute", dur, stream, step)

    def insertion_sort(
        self,
        m: int,
        columns: int,
        dtype: str = "fp32",
        stream: Optional[Stream] = None,
        step: str = "Top-2 sort",
    ) -> float:
        dur = insertion_sort_us(self.spec, self.cal, m, columns, dtype)
        return self.submit("compute", dur, stream, step)

    def elementwise(
        self,
        elements: int,
        dtype: str = "fp16",
        rw_factor: float = 1.0,
        stream: Optional[Stream] = None,
        step: str = "elementwise",
    ) -> float:
        dur = elementwise_us(self.spec, self.cal, elements, dtype, rw_factor)
        return self.submit("compute", dur, stream, step)

    def norm_vector(
        self,
        features: int,
        d: int,
        dtype: str = "fp16",
        stream: Optional[Stream] = None,
        step: str = "norms",
    ) -> float:
        dur = norm_vector_us(self.spec, self.cal, features, d, dtype)
        return self.submit("compute", dur, stream, step)

    def cpu_postprocess(
        self,
        batch: int,
        dtype: str = "fp16",
        n: int = 768,
        stream: Optional[Stream] = None,
        step: str = "Post-processing",
    ) -> float:
        dur = postprocess_us(self.cal, batch, dtype, n)
        return self.submit("cpu", dur, stream, step)

    # ------------------------------------------------------------------
    # memory helpers
    # ------------------------------------------------------------------
    def alloc(self, nbytes: int, label: str = "") -> Allocation:
        return self.memory.alloc(nbytes, label)

    def free(self, allocation: Allocation) -> None:
        self.memory.free(allocation)

    def feature_matrix_bytes(self, m: int, d: int = 128, dtype: str = "fp16") -> int:
        """Bytes occupied by one reference feature matrix on device."""
        return int(m) * int(d) * dtype_bytes(dtype)

    def result_bytes(self, n: int, batch: int, k: int = 2, dtype: str = "fp16") -> int:
        return result_bytes(n, batch, k, dtype)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GPUDevice({self.spec.name!r}, t={self.elapsed_us():.1f}us)"
