"""Simulated-GPU substrate.

The paper runs on Tesla P100/V100 cards; this reproduction executes all
kernels functionally in NumPy while a calibrated analytic model charges
simulated time against device engines (compute, H2D, D2H, CPU), streams
and memory pools.  See DESIGN.md Sec. 2 for the substitution rationale
and :mod:`repro.gpusim.calibration` for every anchored constant.
"""

from .calibration import GemmCalibration, HammingCalibration, KernelCalibration, ScanCalibration
from .clock import SimClock, s_to_us, us_to_s
from .device import (
    DEVICE_REGISTRY,
    TESLA_A100,
    TESLA_P100,
    TESLA_V100,
    DeviceSpec,
    get_device_spec,
)
from .engine_model import GPUDevice
from .kernels import (
    d2h_result_us,
    dtype_bytes,
    elementwise_us,
    gemm_us,
    hamming_us,
    insertion_sort_us,
    norm_vector_us,
    postprocess_us,
    result_bytes,
    top2_scan_us,
)
from .memory import Allocation, MemoryPool
from .pcie import TransferModel, effective_h2d_bandwidth_gbs, h2d_time_us
from .profiler import StepProfiler, StepRecord
from .stream import Event, Stream
from .tracing import TimelineTracer, TraceEvent

__all__ = [
    "Allocation",
    "DEVICE_REGISTRY",
    "DeviceSpec",
    "Event",
    "GPUDevice",
    "GemmCalibration",
    "HammingCalibration",
    "KernelCalibration",
    "MemoryPool",
    "ScanCalibration",
    "SimClock",
    "StepProfiler",
    "StepRecord",
    "Stream",
    "TESLA_A100",
    "TESLA_P100",
    "TESLA_V100",
    "TimelineTracer",
    "TraceEvent",
    "TransferModel",
    "d2h_result_us",
    "dtype_bytes",
    "effective_h2d_bandwidth_gbs",
    "elementwise_us",
    "gemm_us",
    "get_device_spec",
    "h2d_time_us",
    "hamming_us",
    "insertion_sort_us",
    "norm_vector_us",
    "postprocess_us",
    "result_bytes",
    "s_to_us",
    "top2_scan_us",
    "us_to_s",
]
