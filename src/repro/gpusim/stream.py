"""CUDA-style streams and events for the simulated device.

A stream is an in-order queue: operation *i+1* of a stream cannot start
before operation *i* finishes, even if the engines it needs are free.
Different streams are independent except where they contend for the same
engine or are ordered through events — exactly the semantics the paper's
Sec. 6.2 relies on to overlap PCIe transfers and compute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Stream", "Event"]


@dataclass
class Event:
    """A recorded timestamp usable for cross-stream ordering."""

    name: str = ""
    time_us: Optional[float] = None

    @property
    def is_recorded(self) -> bool:
        return self.time_us is not None


class Stream:
    """An in-order execution queue on one simulated device."""

    _counter = 0

    def __init__(self, device_id: int, name: str = "") -> None:
        Stream._counter += 1
        self.stream_id = Stream._counter
        self.device_id = device_id
        self.name = name or f"stream{self.stream_id}"
        #: simulated time at which the last enqueued op completes.
        self.ready_at_us = 0.0
        #: number of operations executed (for tests / profiling).
        self.ops_issued = 0

    def record_event(self, event: Event | None = None) -> Event:
        """Record ``event`` (or a fresh one) at the stream's current tail."""
        if event is None:
            event = Event(name=f"{self.name}-ev")
        event.time_us = self.ready_at_us
        return event

    def wait_event(self, event: Event) -> None:
        """Block subsequent ops on this stream until ``event`` fires."""
        if not event.is_recorded:
            raise ValueError(f"event {event.name!r} has not been recorded")
        assert event.time_us is not None
        if event.time_us > self.ready_at_us:
            self.ready_at_us = event.time_us

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Stream({self.name!r}, ready_at={self.ready_at_us:.2f}us)"
