"""Analytic kernel cost models.

Each function returns the simulated duration (microseconds) of one GPU
kernel or CPU stage, given the workload shape and a device calibration.
The *functional* counterparts (the NumPy code that computes the actual
numbers) live next to the algorithms in :mod:`repro.blas` and
:mod:`repro.core`; keeping cost and function separate lets the tests
check each independently.

Shapes follow the paper's notation: ``d`` feature dimension (128 for
SIFT), ``m`` reference features per image, ``n`` query features, and
``batch`` reference images processed per GEMM (Sec. 5).
"""

from __future__ import annotations

from dataclasses import dataclass

from .calibration import KernelCalibration
from .device import DeviceSpec
from .pcie import d2h_result_time_us

__all__ = [
    "dtype_bytes",
    "gemm_us",
    "hamming_us",
    "top2_scan_us",
    "insertion_sort_us",
    "elementwise_us",
    "norm_vector_us",
    "d2h_result_us",
    "result_bytes",
    "postprocess_us",
]

_DTYPE_BYTES = {"fp16": 2, "fp32": 4}


def dtype_bytes(dtype: str) -> int:
    """Bytes per element for a simulator dtype string."""
    try:
        return _DTYPE_BYTES[dtype]
    except KeyError:
        raise ValueError(f"unknown dtype {dtype!r}; expected 'fp16' or 'fp32'") from None


def _check_shape(**dims: int) -> None:
    for name, value in dims.items():
        if int(value) <= 0:
            raise ValueError(f"{name} must be positive, got {value}")


def gemm_us(
    spec: DeviceSpec,
    cal: KernelCalibration,
    m: int,
    n: int,
    k: int,
    batch: int = 1,
    dtype: str = "fp16",
    tensor_core: bool = False,
) -> float:
    """Time of a (possibly batched) ``m x k @ k x n`` GEMM.

    ``t = launch + flops / (peak * efficiency(flops))`` with the
    saturating efficiency curve of :class:`GemmCalibration` — small
    matrices cannot fill the SMs (Sec. 5.2: batch-1 achieves 0.87 of
    18.7 TFLOPS), large batches approach the ceiling (67.9 % on P100).
    """
    _check_shape(m=m, n=n, k=k, batch=batch)
    flops = 2.0 * m * n * k * batch
    peak = spec.peak_tflops(dtype, tensor_core) * 1e12
    eff = cal.gemm(dtype, tensor_core).efficiency(flops)
    return spec.kernel_launch_us + flops / (peak * eff) * 1e6


def hamming_us(
    spec: DeviceSpec,
    cal: KernelCalibration,
    m: int,
    n: int,
    words: int,
    batch: int = 1,
) -> float:
    """Time of the bucketed XOR/popcount Hamming prefilter.

    Compares ``n`` query signatures against ``m`` reference signatures
    per image over ``batch`` images, each signature ``words`` packed
    uint64 words.  Integer-ALU bound at scale (XOR + ``__popc`` +
    accumulate per word-pair), with the :class:`HammingCalibration`
    occupancy ramp for small candidate sets and a bandwidth wall on the
    signature reads.  This is the cost the cascade backend pays *before*
    the GEMM — the prune is cheap, not free.
    """
    _check_shape(m=m, n=n, words=words, batch=batch)
    ham = cal.hamming
    iops = ham.int_ops_per_word * m * n * words * batch
    peak = spec.fp32_tflops * 1e12 * ham.peak_int_fraction
    eff = ham.efficiency(iops)
    compute_bound = iops / (peak * eff) * 1e6
    bytes_read = (m + n) * words * 8 * batch
    bw_bound = bytes_read / (spec.mem_bandwidth_gbs * ham.bw_fraction * 1e9) * 1e6
    return spec.kernel_launch_us + max(compute_bound, bw_bound)


def top2_scan_us(
    spec: DeviceSpec,
    cal: KernelCalibration,
    m: int,
    columns: int,
    dtype: str = "fp16",
) -> float:
    """Time of the register-resident top-2 scan over ``columns`` columns
    of ``m`` elements each (``columns = n * batch``).

    One thread per column; latency-bound per-element cost at low
    occupancy (FP16 pays the half-intrinsic penalty, Sec. 4.2), capped
    below by the bandwidth wall once resident threads saturate.
    """
    _check_shape(m=m, columns=columns)
    scan = cal.scan
    parallel = scan.effective_parallelism(columns)
    latency_bound = m * columns * scan.cost_ns(dtype) * 1e-3 / parallel  # ns -> us
    bytes_read = m * columns * dtype_bytes(dtype)
    bw_bound = bytes_read / (spec.mem_bandwidth_gbs * scan.bw_fraction * 1e9) * 1e6
    return spec.kernel_launch_us + max(latency_bound, bw_bound)


def insertion_sort_us(
    spec: DeviceSpec,
    cal: KernelCalibration,
    m: int,
    columns: int,
    dtype: str = "fp32",
) -> float:
    """Time of the Garcia et al. [9] modified insertion sort baseline.

    Keeps a sorted k-list in *memory* rather than registers, paying
    repeated loads/stores per element (Sec. 4.1 profiles it at 67 % of
    the whole pipeline).  Same occupancy model as the scan with a much
    larger per-element cost.
    """
    _check_shape(m=m, columns=columns)
    scan = cal.scan
    parallel = scan.effective_parallelism(columns)
    per_elem_ns = cal.insertion_sort_ns * (
        scan.cost_ns(dtype) / scan.cost_fp32_ns
    )  # same relative dtype penalty as the scan
    latency_bound = m * columns * per_elem_ns * 1e-3 / parallel
    # ~5.5x the scan's memory traffic (sorted-list shuffles), same wall.
    bytes_touched = 5.5 * m * columns * dtype_bytes(dtype)
    bw_bound = bytes_touched / (spec.mem_bandwidth_gbs * scan.bw_fraction * 1e9) * 1e6
    return spec.kernel_launch_us + max(latency_bound, bw_bound)


def elementwise_us(
    spec: DeviceSpec,
    cal: KernelCalibration,
    elements: int,
    dtype: str = "fp16",
    rw_factor: float = 1.0,
) -> float:
    """Bandwidth-bound elementwise kernel (row add, sqrt, scale, ...).

    ``rw_factor`` counts effective streamed bytes per element; in-place
    read-modify-write kernels stream each cache line once (factor 1).
    Anchored on Table 1 step 4 (add N_R over 768x768: 8.94 us FP32).
    """
    _check_shape(elements=elements)
    bytes_touched = elements * dtype_bytes(dtype) * rw_factor
    eff = cal.elementwise_eff(dtype)
    return spec.kernel_launch_us + bytes_touched / (spec.mem_bandwidth_gbs * eff * 1e9) * 1e6


def norm_vector_us(
    spec: DeviceSpec,
    cal: KernelCalibration,
    features: int,
    d: int,
    dtype: str = "fp16",
) -> float:
    """Squared-L2-norm vector kernel (steps 1-2 of Algorithm 1).

    Reads ``features x d`` once, writes ``features`` scalars.
    """
    _check_shape(features=features, d=d)
    bytes_touched = features * d * dtype_bytes(dtype) + features * dtype_bytes(dtype)
    eff = cal.elementwise_eff(dtype)
    return spec.kernel_launch_us + bytes_touched / (spec.mem_bandwidth_gbs * eff * 1e9) * 1e6


def result_bytes(n: int, batch: int, k: int = 2, dtype: str = "fp16") -> int:
    """Bytes of the step-8 result: k x n distances + k x n int32 indices."""
    _check_shape(n=n, batch=batch, k=k)
    return batch * (k * n * dtype_bytes(dtype) + k * n * 4)


def d2h_result_us(
    spec: DeviceSpec,
    cal: KernelCalibration,
    n: int,
    batch: int,
    k: int = 2,
    dtype: str = "fp16",
) -> float:
    """Time to gather the top-k result sub-matrix back to the host."""
    nbytes = result_bytes(n, batch, k, dtype)
    return d2h_result_time_us(spec, nbytes, cal.d2h_result_latency_us, cal.d2h_result_gbs)


def postprocess_us(
    cal: KernelCalibration,
    batch: int,
    dtype: str = "fp16",
    n: int = 768,
) -> float:
    """CPU post-processing (ratio test + edge removal) per *batch*.

    Per-image cost decays toward :attr:`post_floor_us` as batching lets
    the host exploit more parallelism (Table 3: 16.85 us -> 3.85 us/img);
    the FP16 path pays a conversion surcharge (Sec. 4.2: +36.3 %).
    The per-image cost scales with the number of query features ``n``
    relative to the paper's 768-feature anchor.
    """
    _check_shape(batch=batch, n=n)
    batch1 = cal.post_batch1_fp16_us if dtype == "fp16" else cal.post_batch1_fp32_us
    parallel = min(float(batch), cal.post_parallel_cap)
    per_image = cal.post_floor_us + (batch1 - cal.post_floor_us) / parallel
    return per_image * batch * (n / 768.0)
