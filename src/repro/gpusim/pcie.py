"""PCIe transfer time model.

The hybrid cache (Sec. 6) streams reference feature matrices from host
memory across PCIe Gen3 x16.  The paper measures ~9.4 GB/s with pinned
memory (vs. the 16 GB/s link peak) and a large further penalty without
pinned memory, which it attributes to the extra host-side staging copy.
This module models both, plus the fixed DMA initiation latency that
dominates small transfers (Table 1's step-8 copy of a 9 KB result takes
47 us — almost pure latency).
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import DeviceSpec

__all__ = ["TransferModel", "h2d_time_us", "d2h_result_time_us"]


@dataclass(frozen=True)
class TransferModel:
    """Bandwidth/latency pair: ``t = latency + bytes / bandwidth``."""

    latency_us: float
    bandwidth_gbs: float

    def time_us(self, nbytes: int) -> float:
        if nbytes < 0:
            raise ValueError("transfer size must be non-negative")
        if nbytes == 0:
            return 0.0
        return self.latency_us + nbytes / (self.bandwidth_gbs * 1e9) * 1e6


def effective_h2d_bandwidth_gbs(spec: DeviceSpec, pinned: bool) -> float:
    """Effective host-to-device bandwidth.

    Pinned: the measured DMA rate.  Pageable: the DMA is preceded by a
    host memcpy into a pinned staging buffer, so the effective rate is
    the harmonic combination of the two (the copies cannot overlap for a
    single buffer) — this reproduces Table 5's w/o-pinned slowdown.
    """
    if pinned:
        return spec.pcie_pinned_gbs
    return 1.0 / (1.0 / spec.pcie_pinned_gbs + 1.0 / spec.host_memcpy_gbs)


def h2d_time_us(spec: DeviceSpec, nbytes: int, pinned: bool = True) -> float:
    """Time to move ``nbytes`` of feature data host -> device."""
    model = TransferModel(spec.pcie_latency_us, effective_h2d_bandwidth_gbs(spec, pinned))
    return model.time_us(nbytes)


def d2h_result_time_us(
    spec: DeviceSpec,
    nbytes: int,
    latency_us: float,
    bandwidth_gbs: float,
) -> float:
    """Time for the step-8 device -> host result gather.

    The top-2 distance rows and index rows live strided inside the big
    similarity matrix, so this copy achieves far less than link peak;
    the calibration (Table 1/3 anchors) supplies the effective numbers.
    """
    return TransferModel(latency_us, bandwidth_gbs).time_us(nbytes)
