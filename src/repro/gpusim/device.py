"""Device specifications for the simulated GPUs.

The paper measures on Nvidia Tesla P100 and V100 cards.  We reproduce on a
machine without GPUs, so the hardware is replaced by an analytic timing
model (see :mod:`repro.gpusim.kernels`) parameterised by the published
datasheet numbers collected here.  The functional results of every kernel
are still computed exactly with NumPy; only *time* is simulated.

All bandwidth figures are in GB/s (1e9 bytes per second) and all peak
throughput figures in TFLOPS (1e12 FLOP/s), matching the units the paper
uses in Table 4.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["DeviceSpec", "TESLA_P100", "TESLA_V100", "TESLA_A100", "get_device_spec", "DEVICE_REGISTRY"]

GIB = 1024**3


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of one GPU model.

    Attributes
    ----------
    name:
        Marketing name, e.g. ``"Tesla P100"``.
    sm_count:
        Number of streaming multiprocessors; scales the saturation point
        of latency-bound kernels such as the top-2 scan.
    fp32_tflops / fp16_tflops / tensor_tflops:
        Peak arithmetic throughput.  ``tensor_tflops`` is 0 when the card
        has no tensor cores (P100).
    mem_bandwidth_gbs:
        Peak device (HBM) memory bandwidth.
    mem_bytes:
        Total device memory.
    pcie_pinned_gbs:
        *Measured* host-to-device bandwidth with pinned memory.  The paper
        reports 9.4 GB/s for PCIe Gen3 x16 in their cloud VMs (Sec. 6.1),
        well under the 16 GB/s link peak.
    host_memcpy_gbs:
        Host-side staging copy bandwidth; pageable transfers pay an extra
        copy through a pinned staging buffer at this rate (Sec. 6.1,
        Table 5 "w/o pinned memory").
    pcie_latency_us:
        Fixed cost of initiating one DMA transfer.
    kernel_launch_us:
        Fixed cost of launching one kernel.
    """

    name: str
    sm_count: int
    fp32_tflops: float
    fp16_tflops: float
    tensor_tflops: float
    mem_bandwidth_gbs: float
    mem_bytes: int
    pcie_pinned_gbs: float = 9.4
    host_memcpy_gbs: float = 12.5
    pcie_latency_us: float = 10.0
    kernel_launch_us: float = 4.0

    def peak_tflops(self, dtype: str, tensor_core: bool = False) -> float:
        """Peak arithmetic throughput for ``dtype`` ("fp16"/"fp32").

        ``tensor_core=True`` selects the tensor-core peak and is only
        valid for FP16 on cards that have tensor cores.
        """
        if tensor_core:
            if self.tensor_tflops <= 0:
                raise ValueError(f"{self.name} has no tensor cores")
            if dtype != "fp16":
                raise ValueError("tensor cores require fp16 operands")
            return self.tensor_tflops
        if dtype == "fp16":
            return self.fp16_tflops
        if dtype == "fp32":
            return self.fp32_tflops
        raise ValueError(f"unknown dtype {dtype!r}")

    def with_memory(self, mem_bytes: int) -> "DeviceSpec":
        """Return a copy of this spec with a different memory size."""
        return replace(self, mem_bytes=int(mem_bytes))


#: Pascal GP100: 56 SMs, 9.3 FP32 / 18.7 FP16 TFLOPS, 732 GB/s HBM2,
#: no tensor cores.  16 GB variant as used throughout the paper.
TESLA_P100 = DeviceSpec(
    name="Tesla P100",
    sm_count=56,
    fp32_tflops=9.3,
    fp16_tflops=18.7,
    tensor_tflops=0.0,
    mem_bandwidth_gbs=732.0,
    mem_bytes=16 * GIB,
)

#: Volta GV100: 80 SMs, 14 FP32 / 28 FP16 / 112 tensor TFLOPS, 900 GB/s.
TESLA_V100 = DeviceSpec(
    name="Tesla V100",
    sm_count=80,
    fp32_tflops=14.0,
    fp16_tflops=28.0,
    tensor_tflops=112.0,
    mem_bandwidth_gbs=900.0,
    mem_bytes=16 * GIB,
)

#: Ampere GA100 (mentioned by the paper as an FP16-capable card); included
#: for forward-looking experiments only.
TESLA_A100 = DeviceSpec(
    name="Tesla A100",
    sm_count=108,
    fp32_tflops=19.5,
    fp16_tflops=78.0,
    tensor_tflops=312.0,
    mem_bandwidth_gbs=1555.0,
    mem_bytes=40 * GIB,
    pcie_pinned_gbs=20.0,
)

DEVICE_REGISTRY: dict[str, DeviceSpec] = {
    "p100": TESLA_P100,
    "v100": TESLA_V100,
    "a100": TESLA_A100,
}


def get_device_spec(name: str) -> DeviceSpec:
    """Look up a device spec by short name (``"p100"``, ``"v100"``, ...)."""
    key = name.strip().lower().replace("tesla ", "").replace("-", "")
    try:
        return DEVICE_REGISTRY[key]
    except KeyError:
        known = ", ".join(sorted(DEVICE_REGISTRY))
        raise KeyError(f"unknown device {name!r}; known devices: {known}") from None
