"""Per-step timing capture.

The paper's Tables 1 and 3 break the pipeline into named steps (GEMM,
add-N_R, top-2 sort, D2H copy, post-processing).  :class:`StepProfiler`
accumulates simulated durations under those names so the benchmark
harness can print the same rows.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

__all__ = ["StepRecord", "StepProfiler"]


@dataclass
class StepRecord:
    name: str
    total_us: float = 0.0
    calls: int = 0

    @property
    def mean_us(self) -> float:
        return self.total_us / self.calls if self.calls else 0.0


class StepProfiler:
    """Accumulates named step durations in insertion order."""

    def __init__(self) -> None:
        self._steps: "OrderedDict[str, StepRecord]" = OrderedDict()
        self.enabled = True

    def add(self, name: str, duration_us: float) -> None:
        if not self.enabled:
            return
        if duration_us < 0:
            raise ValueError("durations must be non-negative")
        record = self._steps.get(name)
        if record is None:
            record = StepRecord(name)
            self._steps[name] = record
        record.total_us += duration_us
        record.calls += 1

    def reset(self) -> None:
        self._steps.clear()

    def total_us(self) -> float:
        return sum(r.total_us for r in self._steps.values())

    def records(self) -> list[StepRecord]:
        return list(self._steps.values())

    def as_dict(self) -> dict[str, float]:
        """Map of step name -> total simulated microseconds."""
        return {name: rec.total_us for name, rec in self._steps.items()}

    def mean_us(self, name: str) -> float:
        return self._steps[name].mean_us

    def __contains__(self, name: str) -> bool:
        return name in self._steps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{r.name}={r.total_us:.1f}us" for r in self._steps.values())
        return f"StepProfiler({inner})"
