"""Device and pinned-host memory accounting.

The simulator does not fake pointers — NumPy arrays hold the actual data
everywhere — but *capacity* is a first-class quantity in the paper
(its "capacity" metric is literally how many reference feature matrices
fit), so allocations are tracked against the device/host budgets and
over-subscription raises :class:`~repro.errors.DeviceOutOfMemoryError`.

The pool is a simple bump-count accountant (no fragmentation model):
the workloads in the paper allocate uniform, batch-granular blocks, for
which fragmentation is not a first-order effect.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import DeviceOutOfMemoryError

__all__ = ["MemoryPool", "Allocation"]


@dataclass(frozen=True)
class Allocation:
    """A live allocation handle returned by :meth:`MemoryPool.alloc`."""

    pool_name: str
    nbytes: int
    label: str
    serial: int


class MemoryPool:
    """Tracks allocations against a fixed byte budget.

    Parameters
    ----------
    capacity_bytes:
        Total budget (e.g. 16 GiB for a P100, or the 64 GB host cache
        budget of Sec. 8).
    name:
        Used in error messages and allocation handles.
    reserved_bytes:
        Carved out up-front and never allocatable — Sec. 8 reserves 4 GB
        of each 16 GB GPU for the search engine's intermediate data.
    """

    def __init__(self, capacity_bytes: int, name: str = "device", reserved_bytes: int = 0) -> None:
        if capacity_bytes < 0 or reserved_bytes < 0:
            raise ValueError("capacities must be non-negative")
        if reserved_bytes > capacity_bytes:
            raise ValueError("reserved exceeds capacity")
        self.name = name
        self.capacity_bytes = int(capacity_bytes)
        self.reserved_bytes = int(reserved_bytes)
        self._used = 0
        self._serial = 0
        self._live: dict[int, Allocation] = {}
        self.peak_bytes = 0

    @property
    def usable_bytes(self) -> int:
        return self.capacity_bytes - self.reserved_bytes

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> int:
        return self.usable_bytes - self._used

    def alloc(self, nbytes: int, label: str = "") -> Allocation:
        """Reserve ``nbytes``; raises :class:`DeviceOutOfMemoryError` if full."""
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if nbytes > self.free_bytes:
            raise DeviceOutOfMemoryError(nbytes, self.free_bytes, self.usable_bytes)
        self._serial += 1
        handle = Allocation(self.name, nbytes, label, self._serial)
        self._live[self._serial] = handle
        self._used += nbytes
        self.peak_bytes = max(self.peak_bytes, self._used)
        return handle

    def free(self, allocation: Allocation) -> None:
        """Release an allocation. Double-free raises ``KeyError``."""
        if allocation.pool_name != self.name:
            raise ValueError(
                f"allocation belongs to pool {allocation.pool_name!r}, not {self.name!r}"
            )
        del self._live[allocation.serial]
        self._used -= allocation.nbytes

    def live_allocations(self) -> list[Allocation]:
        return list(self._live.values())

    def fits(self, nbytes: int) -> bool:
        return int(nbytes) <= self.free_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemoryPool({self.name!r}, used={self._used}/{self.usable_bytes} B, "
            f"live={len(self._live)})"
        )
