"""repro — reproduction of "Exploring HW/SW Co-Optimizations for
Accelerating Large-scale Texture Identification on Distributed GPUs"
(Wang, Zhang, Li, Lin — ICPP '21).

Quickstart::

    import numpy as np
    from repro import TextureSearchEngine, EngineConfig

    engine = TextureSearchEngine(EngineConfig(m=384, n=768))
    engine.add_reference("brick-0", descriptors)   # (128, count) SIFT
    result = engine.search(query_descriptors)
    print(result.best().reference_id, result.throughput_images_per_s)

Subpackages
-----------
``repro.core``
    The paper's contribution: cuBLAS-style 2-NN (Algorithms 1 & 2),
    batching, asymmetric extraction, the composable search engine.
``repro.gpusim``
    Simulated GPU substrate (P100/V100 specs, calibrated cost models,
    streams, memory pools) — see DESIGN.md for the substitution rules.
``repro.blas`` / ``repro.fp16``
    GEMM layer with FP16 accumulation semantics; scale factors,
    overflow detection, compression error (Eq. 2).
``repro.features`` / ``repro.geometry``
    SIFT from scratch, RootSIFT, RANSAC geometric verification.
``repro.cache`` / ``repro.pipeline``
    Hybrid GPU+host FIFO cache, multi-stream overlap model.
``repro.data`` / ``repro.metrics`` / ``repro.baselines``
    Synthetic tea-brick datasets, accuracy/efficiency metrics, OpenCV
    CUDA and Garcia-et-al. baselines.
``repro.distributed``
    The 14-GPU search service: sharding, Redis-like store, REST API.
``repro.bench``
    Experiment runners regenerating every table and figure.
"""

from .core import (
    AsymmetricExtractor,
    AsymmetricPolicy,
    EngineConfig,
    ImageMatch,
    KnnResult,
    SearchResult,
    TextureSearchEngine,
)
from .distributed import DistributedSearchSystem, build_api
from .errors import (
    CacheCapacityError,
    DeviceOutOfMemoryError,
    HalfPrecisionOverflowError,
    ReproError,
)
from .features import SIFTConfig, SIFTExtractor
from .gpusim import GPUDevice, TESLA_P100, TESLA_V100

__version__ = "1.0.0"

__all__ = [
    "AsymmetricExtractor",
    "AsymmetricPolicy",
    "CacheCapacityError",
    "DeviceOutOfMemoryError",
    "DistributedSearchSystem",
    "EngineConfig",
    "GPUDevice",
    "HalfPrecisionOverflowError",
    "ImageMatch",
    "KnnResult",
    "ReproError",
    "SIFTConfig",
    "SIFTExtractor",
    "SearchResult",
    "TESLA_P100",
    "TESLA_V100",
    "TextureSearchEngine",
    "__version__",
    "build_api",
]
