"""Dynamic query batching: the SLO-aware serving tier (Sec. 5.3).

The paper defers query batching to "the DNN-serving literature"; this
package implements what that literature converged on — *continuous
batching*.  Concurrent queries arriving over (simulated) time are
coalesced by a :class:`DynamicBatcher` into fused multi-query sweeps
under a :class:`BatchPolicy` of ``max_batch`` size and ``max_wait_us``
timeout: a group launches when either bound trips, and late arrivals
join the next group.  A deterministic event loop
(:func:`simulate_serving`) drives the batcher against a
:class:`GroupExecutor` — the single engine
(:meth:`~repro.core.engine.TextureSearchEngine.search_group`), the
sharded cluster
(:meth:`~repro.distributed.cluster.DistributedSearchSystem.search_group`),
or the full REST/load-balancer tier — and produces per-request latency
records (queue wait + execution) with p50/p95/p99 accounting
(:class:`ServingReport`).

Everything is deterministic: the same arrival trace and seed replay
byte-identical groups and percentiles, which is what lets the serving
bench experiment (``python -m repro.bench.run serving``) quantify the
throughput-vs-latency trade-off the paper hand-waves.
"""

from .batcher import (
    BatchPolicy,
    DynamicBatcher,
    GroupRecord,
    RequestRecord,
    ServingRequest,
    build_trace,
    simulate_serving,
)
from .executors import (
    ClusterGroupExecutor,
    FusedEngineExecutor,
    GroupExecutor,
    MixedClusterExecutor,
    SerialEngineExecutor,
    WebTierBatchExecutor,
)
from .metrics import Rejected, ServingMeters, ServingReport, percentile
from .workload import (
    burst_arrivals,
    diurnal_arrivals,
    flash_crowd_arrivals,
    poisson_arrivals,
)

__all__ = [
    "BatchPolicy",
    "ClusterGroupExecutor",
    "DynamicBatcher",
    "FusedEngineExecutor",
    "GroupExecutor",
    "GroupRecord",
    "MixedClusterExecutor",
    "Rejected",
    "RequestRecord",
    "SerialEngineExecutor",
    "ServingMeters",
    "ServingReport",
    "ServingRequest",
    "WebTierBatchExecutor",
    "build_trace",
    "burst_arrivals",
    "diurnal_arrivals",
    "flash_crowd_arrivals",
    "percentile",
    "poisson_arrivals",
    "simulate_serving",
]
