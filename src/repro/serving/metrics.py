"""Serving-tier accounting: per-request latency percentiles and fused
group occupancy.

Percentiles use the nearest-rank definition (no interpolation) so that
reports are exactly reproducible across numpy versions and never invent
values absent from the sample.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from ..obs.metrics import Histogram

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, hints only
    from .batcher import BatchPolicy, GroupRecord, RequestRecord

__all__ = ["Rejected", "ServingMeters", "ServingReport", "percentile"]

#: group sizes are bounded by the policy's max_batch (<= 64 at REST).
GROUP_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)


def make_group_size_histogram() -> Histogram:
    """A standalone (unregistered) per-run group-size histogram."""
    return Histogram(
        "serving_group_size", "requests fused per group",
        buckets=GROUP_SIZE_BUCKETS,
    )


@dataclass(frozen=True)
class Rejected:
    """Typed shed outcome for one request that never executed.

    ``reason`` is one of ``"reject-new"`` (queue full, this request
    bounced), ``"drop-oldest"`` (queue full, this request was evicted
    to make room), or ``"deadline-expired"`` (its deadline passed
    while it waited).  ``retry_after_us`` hints how long (simulated)
    the client should wait before retrying — the time until the device
    frees up plus the policy's wait budget; 0 when no estimate exists.
    """

    request_id: int
    arrival_us: float
    shed_us: float
    reason: str
    retry_after_us: float = 0.0


@dataclass
class ServingMeters:
    """Per-run instrumentation captured live by the serving event loop.

    The loop observes each launched group's size into ``group_size``
    and tracks the admission queue's high-water mark — the report
    layer *consumes* these instead of re-deriving them from the record
    lists after the fact (the process-wide registry gets the same
    observations, but aggregated across runs).
    """

    group_size: Histogram = field(default_factory=make_group_size_histogram)
    peak_queue_depth: int = 0

    def observe_group(self, size: int) -> None:
        self.group_size.observe(float(size))

    def observe_queue_depth(self, depth: int) -> None:
        if depth > self.peak_queue_depth:
            self.peak_queue_depth = depth


def percentile(values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile: smallest value with at least ``p``\\%
    of the sample at or below it.  Empty input returns 0.0."""
    if not 0 < p <= 100:
        raise ValueError(f"percentile must be in (0, 100], got {p}")
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return float(ordered[rank - 1])


def _payload_images(payload) -> int:
    """Pairs compared for one request's result payload — works for
    SearchResult / ClusterSearchResult objects and REST dict bodies."""
    value = getattr(payload, "images_searched", None)
    if value is None and isinstance(payload, dict):
        value = payload.get("images_searched")
    return int(value or 0)


@dataclass
class ServingReport:
    """Everything the serving bench reports for one (trace, policy) run."""

    policy: BatchPolicy
    records: list[RequestRecord] = field(default_factory=list)
    groups: list[GroupRecord] = field(default_factory=list)
    #: live meters from the event loop; when present, group-occupancy
    #: figures are read from them instead of recomputed from ``groups``
    #: (equivalent by construction — the loop observes every launch).
    meters: ServingMeters | None = None
    #: requests shed by admission control or expired deadlines —
    #: they never executed and are absent from ``records``.
    rejected: list[Rejected] = field(default_factory=list)

    @property
    def n_requests(self) -> int:
        return len(self.records)

    @property
    def n_rejected(self) -> int:
        return len(self.rejected)

    @property
    def n_offered(self) -> int:
        """Every request the trace offered, executed or shed."""
        return self.n_requests + self.n_rejected

    @property
    def shed_rate(self) -> float:
        """Fraction of offered requests shed (0.0 on an empty trace)."""
        if not self.n_offered:
            return 0.0
        return self.n_rejected / self.n_offered

    @property
    def shed_reasons(self) -> dict[str, int]:
        return dict(Counter(r.reason for r in self.rejected))

    @property
    def n_good(self) -> int:
        """Executed requests that also met their deadline (requests
        without a deadline always count)."""
        return sum(
            1 for r in self.records
            if r.deadline_us is None or r.completed_us <= r.deadline_us
        )

    @property
    def goodput_requests_per_s(self) -> float:
        """Deadline-meeting completions per second of makespan — the
        metric that collapses under metastable overload and plateaus
        under admission control."""
        span = self.makespan_us
        if span <= 0:
            return 0.0
        return self.n_good / (span / 1e6)

    @property
    def n_groups(self) -> int:
        return len(self.groups)

    @property
    def makespan_us(self) -> float:
        """First arrival to last completion."""
        if not self.records:
            return 0.0
        start = min(r.arrival_us for r in self.records)
        end = max(r.completed_us for r in self.records)
        return end - start

    @property
    def total_images_searched(self) -> int:
        """Query-reference pairs compared across every request."""
        return sum(_payload_images(r.result) for r in self.records)

    @property
    def throughput_images_per_s(self) -> float:
        span = self.makespan_us
        if span <= 0:
            return 0.0
        return self.total_images_searched / (span / 1e6)

    @property
    def requests_per_s(self) -> float:
        span = self.makespan_us
        if span <= 0:
            return 0.0
        return self.n_requests / (span / 1e6)

    @property
    def mean_group_size(self) -> float:
        if self.meters is not None:
            hist = self.meters.group_size
            return hist.sum / hist.count if hist.count else 0.0
        if not self.groups:
            return 0.0
        return sum(g.size for g in self.groups) / len(self.groups)

    @property
    def peak_queue_depth(self) -> int:
        """Admission-queue high-water mark (0 without live meters)."""
        return self.meters.peak_queue_depth if self.meters is not None else 0

    @property
    def fused_occupancy(self) -> float:
        """How full the fused GEMMs ran relative to ``max_batch``."""
        if self.policy.max_batch <= 0:
            return 0.0
        return self.mean_group_size / self.policy.max_batch

    @property
    def mean_queue_wait_us(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.queue_wait_us for r in self.records) / len(self.records)

    @property
    def mean_execute_us(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.execute_us for r in self.records) / len(self.records)

    @property
    def trigger_counts(self) -> dict[str, int]:
        return dict(Counter(g.trigger for g in self.groups))

    def latency_percentiles(
        self, percentiles: Sequence[float] = (50, 95, 99)
    ) -> dict[str, float]:
        latencies = [r.latency_us for r in self.records]
        return {
            f"p{p:g}": percentile(latencies, p) for p in percentiles
        }

    def to_dict(self) -> dict:
        """Deterministic JSON-ready summary (floats rounded to 3 dp)."""
        pct = self.latency_percentiles()
        return {
            "max_batch": self.policy.max_batch,
            "max_wait_us": round(self.policy.max_wait_us, 3),
            "n_requests": self.n_requests,
            "n_groups": self.n_groups,
            "makespan_us": round(self.makespan_us, 3),
            "throughput_images_per_s": round(self.throughput_images_per_s, 3),
            "requests_per_s": round(self.requests_per_s, 3),
            "latency_us": {
                "p50": round(pct["p50"], 3),
                "p95": round(pct["p95"], 3),
                "p99": round(pct["p99"], 3),
                "mean_queue_wait": round(self.mean_queue_wait_us, 3),
                "mean_execute": round(self.mean_execute_us, 3),
            },
            "mean_group_size": round(self.mean_group_size, 3),
            "fused_occupancy": round(self.fused_occupancy, 3),
            "peak_queue_depth": self.peak_queue_depth,
            "triggers": {
                k: self.trigger_counts[k] for k in sorted(self.trigger_counts)
            },
            "n_rejected": self.n_rejected,
            "shed_rate": round(self.shed_rate, 4),
            "shed_reasons": {
                k: self.shed_reasons[k] for k in sorted(self.shed_reasons)
            },
            "n_good": self.n_good,
            "goodput_requests_per_s": round(self.goodput_requests_per_s, 3),
        }
