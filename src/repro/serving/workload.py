"""Arrival-trace generators for the serving bench.

All generators are pure functions of their arguments (the stochastic
ones of their seed), so every trace replays exactly.  The
time-varying ones (:func:`diurnal_arrivals`,
:func:`flash_crowd_arrivals`) are non-homogeneous Poisson processes
sampled by thinning: candidate arrivals are drawn at the peak rate and
accepted with probability ``rate(t) / peak`` — the textbook
construction, and deterministic because both the candidate gaps and
the acceptance draws come from one seeded generator.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

__all__ = [
    "burst_arrivals",
    "diurnal_arrivals",
    "flash_crowd_arrivals",
    "poisson_arrivals",
]


def burst_arrivals(
    n_bursts: int,
    burst_size: int,
    interval_us: float,
    start_us: float = 0.0,
) -> list[float]:
    """Closed-loop burst traffic: ``burst_size`` simultaneous arrivals
    every ``interval_us``.  This is the "offered concurrency" knob of
    the serving experiment — concurrency ``c`` means bursts of ``c``."""
    if n_bursts < 0 or burst_size < 0:
        raise ValueError("n_bursts and burst_size must be >= 0")
    if interval_us < 0:
        raise ValueError(f"interval_us must be >= 0, got {interval_us}")
    return [
        start_us + b * interval_us
        for b in range(n_bursts)
        for _ in range(burst_size)
    ]


def poisson_arrivals(
    n_requests: int,
    rate_per_s: float,
    seed: int = 0,
    start_us: float = 0.0,
) -> list[float]:
    """Open-loop Poisson traffic at ``rate_per_s`` mean arrivals/s:
    cumulative sum of seeded exponential inter-arrival gaps."""
    if n_requests < 0:
        raise ValueError(f"n_requests must be >= 0, got {n_requests}")
    if rate_per_s <= 0:
        raise ValueError(f"rate_per_s must be > 0, got {rate_per_s}")
    rng = np.random.default_rng(seed)
    gaps_us = rng.exponential(scale=1e6 / rate_per_s, size=n_requests)
    return (start_us + np.cumsum(gaps_us)).tolist()


def _thinned_arrivals(
    duration_us: float,
    rate_fn: Callable[[float], float],
    max_rate_per_s: float,
    seed: int,
    start_us: float,
) -> list[float]:
    """Non-homogeneous Poisson process over ``[start, start+duration)``
    by thinning: candidates at ``max_rate_per_s``, each accepted with
    probability ``rate_fn(t) / max_rate_per_s``."""
    rng = np.random.default_rng(seed)
    scale = 1e6 / max_rate_per_s
    end_us = start_us + duration_us
    arrivals: list[float] = []
    t = start_us
    while True:
        t += rng.exponential(scale=scale)
        if t >= end_us:
            return arrivals
        if rng.random() * max_rate_per_s <= rate_fn(t):
            arrivals.append(float(t))


def diurnal_arrivals(
    duration_us: float,
    trough_rate_per_s: float,
    peak_rate_per_s: float,
    period_us: float,
    seed: int = 0,
    start_us: float = 0.0,
) -> list[float]:
    """Diurnal open-loop traffic: a cosine-modulated Poisson process
    that starts at the trough rate, crests at ``peak_rate_per_s`` half
    a period in, and returns to the trough — one simulated "day" per
    ``period_us``.  This is the workload an elastic fleet is sized
    against: a static fleet must be provisioned for the peak and then
    idles through the trough."""
    if duration_us < 0:
        raise ValueError(f"duration_us must be >= 0, got {duration_us}")
    if period_us <= 0:
        raise ValueError(f"period_us must be > 0, got {period_us}")
    if trough_rate_per_s <= 0:
        raise ValueError(
            f"trough_rate_per_s must be > 0, got {trough_rate_per_s}"
        )
    if peak_rate_per_s < trough_rate_per_s:
        raise ValueError(
            f"peak_rate_per_s ({peak_rate_per_s}) must be >= "
            f"trough_rate_per_s ({trough_rate_per_s})"
        )
    swing = peak_rate_per_s - trough_rate_per_s

    def rate(t: float) -> float:
        phase = 2.0 * math.pi * (t - start_us) / period_us
        return trough_rate_per_s + swing * 0.5 * (1.0 - math.cos(phase))

    return _thinned_arrivals(duration_us, rate, peak_rate_per_s, seed, start_us)


def flash_crowd_arrivals(
    duration_us: float,
    base_rate_per_s: float,
    spike_rate_per_s: float,
    spike_start_us: float,
    spike_width_us: float,
    seed: int = 0,
    start_us: float = 0.0,
) -> list[float]:
    """Flash-crowd traffic: steady ``base_rate_per_s`` Poisson arrivals
    with a rectangular burst to ``spike_rate_per_s`` over
    ``[spike_start_us, spike_start_us + spike_width_us)`` (offsets
    relative to ``start_us``).  The step up is instantaneous — the
    worst case for a reactive autoscaler, and the scenario where a
    CRITICAL burn-rate page buys reaction time the averaged queue
    signal cannot."""
    if duration_us < 0:
        raise ValueError(f"duration_us must be >= 0, got {duration_us}")
    if base_rate_per_s <= 0:
        raise ValueError(f"base_rate_per_s must be > 0, got {base_rate_per_s}")
    if spike_rate_per_s < base_rate_per_s:
        raise ValueError(
            f"spike_rate_per_s ({spike_rate_per_s}) must be >= "
            f"base_rate_per_s ({base_rate_per_s})"
        )
    if spike_start_us < 0 or spike_width_us < 0:
        raise ValueError("spike_start_us and spike_width_us must be >= 0")
    lo = start_us + spike_start_us
    hi = lo + spike_width_us

    def rate(t: float) -> float:
        return spike_rate_per_s if lo <= t < hi else base_rate_per_s

    return _thinned_arrivals(duration_us, rate, spike_rate_per_s, seed, start_us)
