"""Arrival-trace generators for the serving bench.

Both generators are pure functions of their arguments (the Poisson one
of its seed), so every trace replays exactly.
"""

from __future__ import annotations

import numpy as np

__all__ = ["burst_arrivals", "poisson_arrivals"]


def burst_arrivals(
    n_bursts: int,
    burst_size: int,
    interval_us: float,
    start_us: float = 0.0,
) -> list[float]:
    """Closed-loop burst traffic: ``burst_size`` simultaneous arrivals
    every ``interval_us``.  This is the "offered concurrency" knob of
    the serving experiment — concurrency ``c`` means bursts of ``c``."""
    if n_bursts < 0 or burst_size < 0:
        raise ValueError("n_bursts and burst_size must be >= 0")
    if interval_us < 0:
        raise ValueError(f"interval_us must be >= 0, got {interval_us}")
    return [
        start_us + b * interval_us
        for b in range(n_bursts)
        for _ in range(burst_size)
    ]


def poisson_arrivals(
    n_requests: int,
    rate_per_s: float,
    seed: int = 0,
    start_us: float = 0.0,
) -> list[float]:
    """Open-loop Poisson traffic at ``rate_per_s`` mean arrivals/s:
    cumulative sum of seeded exponential inter-arrival gaps."""
    if n_requests < 0:
        raise ValueError(f"n_requests must be >= 0, got {n_requests}")
    if rate_per_s <= 0:
        raise ValueError(f"rate_per_s must be > 0, got {rate_per_s}")
    rng = np.random.default_rng(seed)
    gaps_us = rng.exponential(scale=1e6 / rate_per_s, size=n_requests)
    return (start_us + np.cumsum(gaps_us)).tolist()
