"""Group executors: the pluggable back half of the serving loop.

Each executor turns one admitted group into ``(payloads, elapsed_us)``
where ``payloads`` has one entry per query (in order) and
``elapsed_us`` is the simulated time the whole group occupied the
backend.  The event loop treats the backend as serial, so
``elapsed_us`` is exactly how long the device (or cluster) is busy.

Executors are duck-typed — :class:`GroupExecutor` documents the
contract; anything with a matching ``execute`` works.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

import numpy as np

__all__ = [
    "ClusterGroupExecutor",
    "FusedEngineExecutor",
    "GroupExecutor",
    "MixedClusterExecutor",
    "SerialEngineExecutor",
    "WebTierBatchExecutor",
]


class GroupExecutor(ABC):
    """Contract: serve one fused group, report per-query payloads and
    the simulated time the group held the backend."""

    name: str = "abstract"

    @abstractmethod
    def execute(self, queries: list[Any]) -> tuple[list[Any], float]:
        """Return ``(payloads, elapsed_us)`` with ``len(payloads) ==
        len(queries)``."""


class FusedEngineExecutor(GroupExecutor):
    """One engine, one fused sweep per group: every reference batch is
    staged (H2D) once and answers all queries in the group."""

    name = "engine-fused"

    def __init__(self, engine) -> None:
        self.engine = engine

    def execute(self, queries: list[Any]) -> tuple[list[Any], float]:
        group = self.engine.search_group(queries)
        return list(group.results), group.elapsed_us

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FusedEngineExecutor({self.engine!r})"


class SerialEngineExecutor(GroupExecutor):
    """Per-query baseline: the same engine, but each query runs its own
    full sweep back-to-back.  This is what serving looks like without
    the batcher — every query re-pays H2D staging and kernel launches."""

    name = "engine-serial"

    def __init__(self, engine) -> None:
        self.engine = engine

    def execute(self, queries: list[Any]) -> tuple[list[Any], float]:
        results = [self.engine.search(q) for q in queries]
        elapsed_us = float(sum(r.elapsed_us for r in results))
        return results, elapsed_us


class ClusterGroupExecutor(GroupExecutor):
    """Whole-group dispatch across the sharded cluster: one scatter per
    shard serves the entire group, shard sweeps overlap, and per-query
    partial-result metadata survives in each payload.

    ``nprobe`` / ``recall_target`` pass through to the cluster's
    candidate-routing tier (no-ops on a router-less cluster), so a
    serving deployment can pin its accuracy/cost point per executor.
    """

    name = "cluster-fused"

    def __init__(
        self,
        system,
        nprobe: int | None = None,
        recall_target: float | None = None,
    ) -> None:
        self.system = system
        self.nprobe = nprobe
        self.recall_target = recall_target

    def execute(self, queries: list[Any]) -> tuple[list[Any], float]:
        group = self.system.search_group(
            queries, nprobe=self.nprobe, recall_target=self.recall_target
        )
        return list(group.results), group.elapsed_us


class MixedClusterExecutor(GroupExecutor):
    """Search *and* corpus-mutation traffic on one cluster backend.

    Requests in a group are either plain queries (a bare descriptor
    array, served like :class:`ClusterGroupExecutor`) or mutations:
    ``("enroll", ref_id, descriptors)`` and ``("delete", ref_id)``
    tuples.  Mutations are applied first, then the remaining searches
    run as one fused ``search_group`` so a mutation admitted before a
    search in the same group is visible to it (group-local
    read-your-writes).  Payload order mirrors query order: mutations
    yield their :class:`EnrollmentAck` / :class:`DeletionAck`,
    searches their per-query result.

    Timing model: mutations are host-side work (serialisation, KV
    writes, router absorb) at :data:`ENROLL_COST_US` each, and they
    overlap the group's GPU sweep — the backend is held for the *max*
    of the mutation time and the search time, not their sum.  A
    mutation-only group is charged its mutation time alone.
    """

    name = "cluster-mixed"

    #: per-mutation web/KV handling cost (µs) charged to the backend on
    #: top of the cluster's own simulated time.
    ENROLL_COST_US = 300.0

    def __init__(
        self,
        system,
        nprobe: int | None = None,
        recall_target: float | None = None,
    ) -> None:
        self.system = system
        self.nprobe = nprobe
        self.recall_target = recall_target

    @staticmethod
    def _is_mutation(query: Any) -> bool:
        return isinstance(query, tuple) and len(query) >= 2 and query[0] in (
            "enroll", "delete",
        )

    def execute(self, queries: list[Any]) -> tuple[list[Any], float]:
        payloads: list[Any] = [None] * len(queries)
        mutation_us = 0.0
        search_us = 0.0
        searches: list[tuple[int, Any]] = []
        for slot, query in enumerate(queries):
            if not self._is_mutation(query):
                searches.append((slot, query))
                continue
            op = query[0]
            if op == "enroll":
                payloads[slot] = self.system.enroll(query[1], query[2])
            else:
                payloads[slot] = self.system.delete(query[1])
            mutation_us += self.ENROLL_COST_US
        if searches:
            group = self.system.search_group(
                [q for _, q in searches],
                nprobe=self.nprobe,
                recall_target=self.recall_target,
            )
            for (slot, _), result in zip(searches, group.results):
                payloads[slot] = result
            search_us = group.elapsed_us
        return payloads, max(mutation_us, search_us)


class WebTierBatchExecutor(GroupExecutor):
    """The full front door: groups go through the load balancer as
    ``POST /search/batch`` requests, so executor time includes web-tier
    overhead and the payloads are the JSON-style response dicts."""

    name = "webtier-batch"

    def __init__(
        self,
        tier,
        top: int = 5,
        nprobe: int | None = None,
        recall_target: float | None = None,
    ) -> None:
        self.tier = tier
        self.top = top
        self.nprobe = nprobe
        self.recall_target = recall_target

    def execute(self, queries: list[Any]) -> tuple[list[Any], float]:
        # Imported here so repro.serving does not hard-depend on the
        # distributed tier (engine-only users never touch REST).
        from ..distributed.rest import Request

        body = {
            "queries": [np.asarray(q).tolist() for q in queries],
            "top": self.top,
        }
        if self.nprobe is not None:
            body["nprobe"] = self.nprobe
        if self.recall_target is not None:
            body["recall_target"] = self.recall_target
        record = self.tier.handle(Request("POST", "/search/batch", body))
        response = record.response
        if not response.ok:
            raise RuntimeError(
                f"/search/batch failed with {response.status}: "
                f"{response.body.get('error')}"
            )
        return list(response.body["queries"]), record.latency_us
