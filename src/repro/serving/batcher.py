"""The admission queue and its deterministic event loop.

:class:`DynamicBatcher` is a FIFO admission queue governed by a
:class:`BatchPolicy`: a group launches when ``max_batch`` requests are
pending ("size" trigger) or when the oldest pending request has waited
``max_wait_us`` ("timeout" trigger), whichever trips first.  Requests
that arrive while a group is executing join the *next* group —
continuous batching, not static windowing.

Overload protection is opt-in per policy: ``max_queue_depth`` bounds
the queue (arrivals beyond it are shed per the ``shed`` policy with a
typed :class:`~repro.serving.metrics.Rejected` outcome and a
``retry_after_us`` hint), and requests may carry a ``deadline_us`` —
expired ones are shed at dispatch instead of wasting a sweep, and the
surviving group executes under a :func:`repro.obs.deadline_scope`
covering its tightest member so downstream sweeps can truncate.

:func:`simulate_serving` advances a simulated microsecond clock over a
sorted arrival trace.  The device is modelled as a single serial
executor (one fused sweep at a time, matching the engine's serialized
device timeline); each launch charges the executor-reported
``elapsed_us`` and records per-request queue wait, execution span and
end-to-end latency.  No wall-clock reads anywhere — identical traces
replay byte-identical schedules.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from ..errors import ExecutorContractError
from ..obs import deadline_scope, default_registry, default_tracer
from ..obs.timeseries import advance_to as _ts_advance_to
from ..obs.timeseries import exclusive_clock as _ts_exclusive_clock
from .metrics import GROUP_SIZE_BUCKETS, Rejected, ServingMeters, ServingReport

_REG = default_registry()
_TRACER = default_tracer()
_SERVING_REQUESTS = _REG.counter(
    "repro_serving_requests_total",
    "Requests admitted by the serving batcher",
)
_SERVING_GROUPS = _REG.counter(
    "repro_serving_groups_total",
    "Fused groups launched, by admission trigger",
    ("trigger",),
)
_QUEUE_DEPTH = _REG.gauge(
    "repro_serving_queue_depth",
    "Requests pending in the admission queue right now",
)
_GROUP_SIZE = _REG.histogram(
    "repro_serving_group_size",
    "Requests fused per launched group",
    buckets=GROUP_SIZE_BUCKETS,
)
_QUEUE_WAIT_US = _REG.histogram(
    "repro_serving_queue_wait_us",
    "Simulated time requests waited for admission",
)
_SHED = _REG.counter(
    "repro_serving_shed_total",
    "Requests shed by the serving tier, by reason",
    ("reason",),
)
_COMPLETIONS = _REG.counter(
    "repro_serving_completions_total",
    "Requests completed by the serving tier, by SLO outcome "
    "(good = finished within its deadline or had none)",
    ("outcome",),
)
_LATENCY_US = _REG.histogram(
    "repro_serving_latency_us",
    "End-to-end simulated request latency (queue wait + execution)",
)
_COMPLETED_GOOD = _COMPLETIONS.labels(outcome="good")
_COMPLETED_LATE = _COMPLETIONS.labels(outcome="late")
_GROUP_SIZE_TRIGGER = _SERVING_GROUPS.labels(trigger="size")
_GROUP_TIMEOUT_TRIGGER = _SERVING_GROUPS.labels(trigger="timeout")

__all__ = [
    "BatchPolicy",
    "DynamicBatcher",
    "GroupRecord",
    "RequestRecord",
    "ServingRequest",
    "build_trace",
    "simulate_serving",
]


@dataclass(frozen=True)
class BatchPolicy:
    """Admission policy: launch at ``max_batch`` pending requests or
    once the oldest has waited ``max_wait_us``, whichever trips first.

    ``max_batch=1`` degenerates to per-query serving (the baseline);
    ``max_wait_us=0`` launches whatever is pending as soon as the
    device frees up, never holding a request back for company.

    ``max_queue_depth`` bounds the admission queue (0 = unbounded, the
    pre-overload-protection behaviour).  When an arrival finds the
    queue full, ``shed`` picks the victim: ``"reject-new"`` bounces
    the arrival, ``"drop-oldest"`` evicts the head (the request most
    likely to miss its deadline anyway) and admits the arrival.
    """

    max_batch: int = 8
    max_wait_us: float = 0.0
    max_queue_depth: int = 0
    shed: str = "reject-new"

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_us < 0:
            raise ValueError(f"max_wait_us must be >= 0, got {self.max_wait_us}")
        if self.max_queue_depth < 0:
            raise ValueError(
                f"max_queue_depth must be >= 0, got {self.max_queue_depth}"
            )
        if self.shed not in ("reject-new", "drop-oldest"):
            raise ValueError(
                f"shed must be 'reject-new' or 'drop-oldest', got {self.shed!r}"
            )


@dataclass(frozen=True)
class ServingRequest:
    """One query submission: an arrival timestamp plus an opaque query
    payload (a descriptor matrix for engine executors, anything the
    executor understands otherwise).

    ``deadline_us`` is an optional *absolute* simulated-time deadline:
    a request still queued past it is shed instead of dispatched, and
    one dispatched close to it truncates downstream sweeps via
    :func:`repro.obs.deadline_scope`.  ``None`` means "wait forever".
    """

    request_id: int
    arrival_us: float
    query: Any
    deadline_us: float | None = None


@dataclass
class GroupRecord:
    """One fused launch: which requests rode together and why."""

    group_id: int
    request_ids: list[int]
    trigger: str  # "size" | "timeout"
    launched_us: float
    completed_us: float

    @property
    def size(self) -> int:
        return len(self.request_ids)

    @property
    def execute_us(self) -> float:
        return self.completed_us - self.launched_us


@dataclass
class RequestRecord:
    """Per-request latency decomposition: ``latency = queue_wait + execute``."""

    request_id: int
    group_id: int
    group_size: int
    arrival_us: float
    dispatched_us: float
    completed_us: float
    result: Any = field(default=None, repr=False)
    deadline_us: float | None = None

    @property
    def queue_wait_us(self) -> float:
        return self.dispatched_us - self.arrival_us

    @property
    def execute_us(self) -> float:
        return self.completed_us - self.dispatched_us

    @property
    def latency_us(self) -> float:
        return self.completed_us - self.arrival_us


class DynamicBatcher:
    """FIFO admission queue; pure policy, no clock of its own."""

    def __init__(self, policy: BatchPolicy) -> None:
        self.policy = policy
        self._pending: deque[ServingRequest] = deque()

    def __len__(self) -> int:
        return len(self._pending)

    def enqueue(self, request: ServingRequest) -> None:
        self._pending.append(request)

    def deadline_us(self) -> float | None:
        """When the oldest pending request's wait budget expires."""
        if not self._pending:
            return None
        return self._pending[0].arrival_us + self.policy.max_wait_us

    def trigger(self, now_us: float) -> str | None:
        """Which bound (if any) says "launch now"?"""
        if not self._pending:
            return None
        if len(self._pending) >= self.policy.max_batch:
            return "size"
        if now_us >= self.deadline_us():
            return "timeout"
        return None

    def take(self) -> list[ServingRequest]:
        """Pop the oldest ``max_batch`` pending requests."""
        count = min(self.policy.max_batch, len(self._pending))
        return [self._pending.popleft() for _ in range(count)]

    def drop_oldest(self) -> ServingRequest:
        """Evict and return the head of the queue (shed victim)."""
        return self._pending.popleft()


def build_trace(
    arrivals: Sequence[float],
    queries: Sequence[Any],
    deadline_us: float | None = None,
) -> list[ServingRequest]:
    """Zip arrival times with query payloads into a trace.  Request ids
    follow submission order, which also breaks arrival-time ties.

    ``deadline_us`` is a *relative* per-request budget: each request's
    absolute deadline is its arrival time plus the budget.
    """
    if len(arrivals) != len(queries):
        raise ValueError(
            f"{len(arrivals)} arrivals but {len(queries)} queries"
        )
    if deadline_us is not None and deadline_us <= 0:
        raise ValueError(f"deadline_us must be > 0, got {deadline_us}")
    return [
        ServingRequest(
            request_id=i,
            arrival_us=float(t),
            query=q,
            deadline_us=None if deadline_us is None else float(t) + float(deadline_us),
        )
        for i, (t, q) in enumerate(zip(arrivals, queries))
    ]


def simulate_serving(
    executor,
    trace: Iterable[ServingRequest],
    policy: BatchPolicy,
) -> ServingReport:
    """Run the event loop: admit arrivals, trip the policy, charge the
    executor, account latency.  Returns a :class:`ServingReport`.

    ``executor`` is any object with
    ``execute(queries) -> (payloads, elapsed_us)`` — see
    :mod:`repro.serving.executors`.

    With a bounded queue (``policy.max_queue_depth > 0``) arrivals
    that find it full are shed per ``policy.shed``; requests whose
    ``deadline_us`` passes while they wait are shed at dispatch.  Shed
    requests never execute — they come back as typed
    :class:`~repro.serving.metrics.Rejected` outcomes in
    ``report.rejected``, each with a ``retry_after_us`` hint.
    """
    requests = sorted(trace, key=lambda r: r.arrival_us)
    batcher = DynamicBatcher(policy)
    records: list[RequestRecord] = []
    groups: list[GroupRecord] = []
    rejected: list[Rejected] = []
    meters = ServingMeters()

    i = 0
    n = len(requests)
    t = 0.0
    free_at = 0.0

    def _shed(request: ServingRequest, now_us: float, reason: str) -> None:
        _SHED.labels(reason=reason).inc()
        if reason == "deadline-expired":
            retry_after_us = 0.0  # retrying a missed deadline buys nothing
        else:
            # earliest the device could even start it, plus its full
            # wait budget: the soonest a retry stands a fair chance
            retry_after_us = max(free_at - now_us, 0.0) + policy.max_wait_us
        rejected.append(
            Rejected(
                request_id=request.request_id,
                arrival_us=request.arrival_us,
                shed_us=now_us,
                reason=reason,
                retry_after_us=retry_after_us,
            )
        )

    while i < n or len(batcher):
        if not len(batcher):
            t = max(t, requests[i].arrival_us)
        while i < n and requests[i].arrival_us <= t:
            arrival = requests[i]
            i += 1
            if policy.max_queue_depth and len(batcher) >= policy.max_queue_depth:
                if policy.shed == "reject-new":
                    _shed(arrival, arrival.arrival_us, "reject-new")
                    continue
                _shed(batcher.drop_oldest(), arrival.arrival_us, "drop-oldest")
            batcher.enqueue(arrival)
            _SERVING_REQUESTS.inc()
        depth = len(batcher)
        _QUEUE_DEPTH.set(depth)
        meters.observe_queue_depth(depth)
        # this loop owns the absolute timeline: feed it to an installed
        # time-series recorder so samples land on simulated boundaries
        _ts_advance_to(t)
        if t < free_at:
            # device busy: late arrivals admitted above join the next
            # group once the running sweep completes.
            t = free_at
            continue
        trig = batcher.trigger(t)
        if trig is None:
            # Idle device, under-full group, wait budget unspent: sleep
            # until the deadline or the next arrival, whichever first.
            deadline = batcher.deadline_us()
            if i < n:
                t = min(deadline, requests[i].arrival_us)
            else:
                t = deadline
            continue
        taken = batcher.take()
        _QUEUE_DEPTH.set(len(batcher))
        group = []
        for request in taken:
            if request.deadline_us is not None and t >= request.deadline_us:
                # expired while queued: shedding now is strictly better
                # than spending device time on an answer nobody awaits
                _shed(request, t, "deadline-expired")
            else:
                group.append(request)
        if not group:
            continue
        # the group's sweep runs under its tightest member's remaining
        # budget, so downstream engines can truncate instead of overrun
        budgets = [
            r.deadline_us - t for r in group if r.deadline_us is not None
        ]
        with _TRACER.span(
            "serving.group", layer="serving",
            size=len(group), trigger=trig,
        ) as span:
            queries = [r.query for r in group]
            # nested cluster calls advance the recorder *relatively*;
            # suppress them here — this loop charges the same simulated
            # time absolutely via advance_to below
            with _ts_exclusive_clock():
                if budgets:
                    with deadline_scope(min(budgets)):
                        payloads, elapsed_us = executor.execute(queries)
                else:
                    payloads, elapsed_us = executor.execute(queries)
            if span is not None:
                span.set(sim_elapsed_us=float(elapsed_us))
        if len(payloads) != len(group):
            raise ExecutorContractError(
                expected=len(group),
                got=len(payloads),
                executor=type(executor).__name__,
            )
        completed = t + float(elapsed_us)
        # launch-time events are stamped at t (the clock's position)…
        (_GROUP_SIZE_TRIGGER if trig == "size" else _GROUP_TIMEOUT_TRIGGER).inc()
        _GROUP_SIZE.observe(float(len(group)))
        meters.observe_group(len(group))
        for request in group:
            _QUEUE_WAIT_US.observe(t - request.arrival_us)
        # …then the clock advances before events stamped at `completed`,
        # so a sample at a boundary in (t, completed] excludes them
        _ts_advance_to(completed)
        group_id = len(groups)
        groups.append(
            GroupRecord(
                group_id=group_id,
                request_ids=[r.request_id for r in group],
                trigger=trig,
                launched_us=t,
                completed_us=completed,
            )
        )
        for request, payload in zip(group, payloads):
            _LATENCY_US.observe(completed - request.arrival_us)
            if request.deadline_us is None or completed <= request.deadline_us:
                _COMPLETED_GOOD.inc()
            else:
                _COMPLETED_LATE.inc()
            records.append(
                RequestRecord(
                    request_id=request.request_id,
                    group_id=group_id,
                    group_size=len(group),
                    arrival_us=request.arrival_us,
                    dispatched_us=t,
                    completed_us=completed,
                    result=payload,
                    deadline_us=request.deadline_us,
                )
            )
        free_at = completed

    # the loop drained: leave the gauge telling the truth (an idle
    # queue), not frozen at the last pre-launch depth
    _ts_advance_to(max(t, free_at))
    _QUEUE_DEPTH.set(0)
    meters.observe_queue_depth(0)

    records.sort(key=lambda r: r.request_id)
    rejected.sort(key=lambda r: r.request_id)
    return ServingReport(
        policy=policy, records=records, groups=groups,
        meters=meters, rejected=rejected,
    )
