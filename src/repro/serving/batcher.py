"""The admission queue and its deterministic event loop.

:class:`DynamicBatcher` is a FIFO admission queue governed by a
:class:`BatchPolicy`: a group launches when ``max_batch`` requests are
pending ("size" trigger) or when the oldest pending request has waited
``max_wait_us`` ("timeout" trigger), whichever trips first.  Requests
that arrive while a group is executing join the *next* group —
continuous batching, not static windowing.

:func:`simulate_serving` advances a simulated microsecond clock over a
sorted arrival trace.  The device is modelled as a single serial
executor (one fused sweep at a time, matching the engine's serialized
device timeline); each launch charges the executor-reported
``elapsed_us`` and records per-request queue wait, execution span and
end-to-end latency.  No wall-clock reads anywhere — identical traces
replay byte-identical schedules.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from ..obs import default_registry, default_tracer
from .metrics import GROUP_SIZE_BUCKETS, ServingMeters, ServingReport

_REG = default_registry()
_TRACER = default_tracer()
_SERVING_REQUESTS = _REG.counter(
    "repro_serving_requests_total",
    "Requests admitted by the serving batcher",
)
_SERVING_GROUPS = _REG.counter(
    "repro_serving_groups_total",
    "Fused groups launched, by admission trigger",
    ("trigger",),
)
_QUEUE_DEPTH = _REG.gauge(
    "repro_serving_queue_depth",
    "Requests pending in the admission queue right now",
)
_GROUP_SIZE = _REG.histogram(
    "repro_serving_group_size",
    "Requests fused per launched group",
    buckets=GROUP_SIZE_BUCKETS,
)
_QUEUE_WAIT_US = _REG.histogram(
    "repro_serving_queue_wait_us",
    "Simulated time requests waited for admission",
)
_GROUP_SIZE_TRIGGER = _SERVING_GROUPS.labels(trigger="size")
_GROUP_TIMEOUT_TRIGGER = _SERVING_GROUPS.labels(trigger="timeout")

__all__ = [
    "BatchPolicy",
    "DynamicBatcher",
    "GroupRecord",
    "RequestRecord",
    "ServingRequest",
    "build_trace",
    "simulate_serving",
]


@dataclass(frozen=True)
class BatchPolicy:
    """Admission policy: launch at ``max_batch`` pending requests or
    once the oldest has waited ``max_wait_us``, whichever trips first.

    ``max_batch=1`` degenerates to per-query serving (the baseline);
    ``max_wait_us=0`` launches whatever is pending as soon as the
    device frees up, never holding a request back for company.
    """

    max_batch: int = 8
    max_wait_us: float = 0.0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_us < 0:
            raise ValueError(f"max_wait_us must be >= 0, got {self.max_wait_us}")


@dataclass(frozen=True)
class ServingRequest:
    """One query submission: an arrival timestamp plus an opaque query
    payload (a descriptor matrix for engine executors, anything the
    executor understands otherwise)."""

    request_id: int
    arrival_us: float
    query: Any


@dataclass
class GroupRecord:
    """One fused launch: which requests rode together and why."""

    group_id: int
    request_ids: list[int]
    trigger: str  # "size" | "timeout"
    launched_us: float
    completed_us: float

    @property
    def size(self) -> int:
        return len(self.request_ids)

    @property
    def execute_us(self) -> float:
        return self.completed_us - self.launched_us


@dataclass
class RequestRecord:
    """Per-request latency decomposition: ``latency = queue_wait + execute``."""

    request_id: int
    group_id: int
    group_size: int
    arrival_us: float
    dispatched_us: float
    completed_us: float
    result: Any = field(default=None, repr=False)

    @property
    def queue_wait_us(self) -> float:
        return self.dispatched_us - self.arrival_us

    @property
    def execute_us(self) -> float:
        return self.completed_us - self.dispatched_us

    @property
    def latency_us(self) -> float:
        return self.completed_us - self.arrival_us


class DynamicBatcher:
    """FIFO admission queue; pure policy, no clock of its own."""

    def __init__(self, policy: BatchPolicy) -> None:
        self.policy = policy
        self._pending: deque[ServingRequest] = deque()

    def __len__(self) -> int:
        return len(self._pending)

    def enqueue(self, request: ServingRequest) -> None:
        self._pending.append(request)

    def deadline_us(self) -> float | None:
        """When the oldest pending request's wait budget expires."""
        if not self._pending:
            return None
        return self._pending[0].arrival_us + self.policy.max_wait_us

    def trigger(self, now_us: float) -> str | None:
        """Which bound (if any) says "launch now"?"""
        if not self._pending:
            return None
        if len(self._pending) >= self.policy.max_batch:
            return "size"
        if now_us >= self.deadline_us():
            return "timeout"
        return None

    def take(self) -> list[ServingRequest]:
        """Pop the oldest ``max_batch`` pending requests."""
        count = min(self.policy.max_batch, len(self._pending))
        return [self._pending.popleft() for _ in range(count)]


def build_trace(
    arrivals: Sequence[float], queries: Sequence[Any]
) -> list[ServingRequest]:
    """Zip arrival times with query payloads into a trace.  Request ids
    follow submission order, which also breaks arrival-time ties."""
    if len(arrivals) != len(queries):
        raise ValueError(
            f"{len(arrivals)} arrivals but {len(queries)} queries"
        )
    return [
        ServingRequest(request_id=i, arrival_us=float(t), query=q)
        for i, (t, q) in enumerate(zip(arrivals, queries))
    ]


def simulate_serving(
    executor,
    trace: Iterable[ServingRequest],
    policy: BatchPolicy,
) -> ServingReport:
    """Run the event loop: admit arrivals, trip the policy, charge the
    executor, account latency.  Returns a :class:`ServingReport`.

    ``executor`` is any object with
    ``execute(queries) -> (payloads, elapsed_us)`` — see
    :mod:`repro.serving.executors`.
    """
    requests = sorted(trace, key=lambda r: r.arrival_us)
    batcher = DynamicBatcher(policy)
    records: list[RequestRecord] = []
    groups: list[GroupRecord] = []
    meters = ServingMeters()

    i = 0
    n = len(requests)
    t = 0.0
    free_at = 0.0
    while i < n or len(batcher):
        if not len(batcher):
            t = max(t, requests[i].arrival_us)
        while i < n and requests[i].arrival_us <= t:
            batcher.enqueue(requests[i])
            _SERVING_REQUESTS.inc()
            i += 1
        depth = len(batcher)
        _QUEUE_DEPTH.set(depth)
        meters.observe_queue_depth(depth)
        if t < free_at:
            # device busy: late arrivals admitted above join the next
            # group once the running sweep completes.
            t = free_at
            continue
        trig = batcher.trigger(t)
        if trig is None:
            # Idle device, under-full group, wait budget unspent: sleep
            # until the deadline or the next arrival, whichever first.
            deadline = batcher.deadline_us()
            if i < n:
                t = min(deadline, requests[i].arrival_us)
            else:
                t = deadline
            continue
        group = batcher.take()
        _QUEUE_DEPTH.set(len(batcher))
        with _TRACER.span(
            "serving.group", layer="serving",
            size=len(group), trigger=trig,
        ) as span:
            payloads, elapsed_us = executor.execute([r.query for r in group])
            if span is not None:
                span.set(sim_elapsed_us=float(elapsed_us))
        if len(payloads) != len(group):
            raise RuntimeError(
                f"executor returned {len(payloads)} payloads for a "
                f"group of {len(group)}"
            )
        completed = t + float(elapsed_us)
        (_GROUP_SIZE_TRIGGER if trig == "size" else _GROUP_TIMEOUT_TRIGGER).inc()
        _GROUP_SIZE.observe(float(len(group)))
        meters.observe_group(len(group))
        group_id = len(groups)
        groups.append(
            GroupRecord(
                group_id=group_id,
                request_ids=[r.request_id for r in group],
                trigger=trig,
                launched_us=t,
                completed_us=completed,
            )
        )
        for request, payload in zip(group, payloads):
            _QUEUE_WAIT_US.observe(t - request.arrival_us)
            records.append(
                RequestRecord(
                    request_id=request.request_id,
                    group_id=group_id,
                    group_size=len(group),
                    arrival_us=request.arrival_us,
                    dispatched_us=t,
                    completed_us=completed,
                    result=payload,
                )
            )
        free_at = completed

    records.sort(key=lambda r: r.request_id)
    return ServingReport(policy=policy, records=records, groups=groups, meters=meters)
