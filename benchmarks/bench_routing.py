"""Routing — recall vs sweep reduction for two-tier retrieval, plus
the wall-clock cost of one IVF nomination in front of the scatter."""

import numpy as np

from conftest import attach_summary, record_result
from repro.bench.experiments import routing_bench
from repro.bench.experiments.fault_tolerance import _make_descriptors, _noisy
from repro.routing import RouterPolicy, build_router


def test_routing_sweep(benchmark):
    result = routing_bench.run(json_path="BENCH_routing.json")
    record_result(result)
    attach_summary(benchmark, result)
    benchmark.pedantic(
        routing_bench.run,
        kwargs=dict(quick=True, json_path="BENCH_routing.json"),
        rounds=1, iterations=1,
    )
    # the acceptance bar: >= 5x fewer references swept at >= 0.95
    # recall@1 vs exhaustive on the largest benched corpus ...
    assert result.summary["meets_reduction_bar"] is True
    point = result.summary["best_operating_point"]
    assert point["sweep_reduction_x"] >= routing_bench.MIN_REDUCTION
    assert point["recall_at_1_vs_exhaustive"] >= routing_bench.MIN_RECALL
    # ... and probing every list degenerates to the exhaustive path
    # bit-for-bit (routing never forks the search results)
    assert result.summary["router_off_bit_identical_at_full_probe"] is True


def test_nomination_kernel(benchmark):
    """Wall-clock of one IVF nomination over a 480-image corpus."""
    rng = np.random.default_rng(0)
    router = build_router(RouterPolicy(kind="ivf", n_lists=48, seed=0))
    descs = [_make_descriptors(rng, count=32) for _ in range(480)]
    for i, desc in enumerate(descs):
        router.add(f"r{i:04d}", desc, f"node-{i % 6}")
    router.fit()
    query = _noisy(rng, descs[7])

    decision = benchmark(lambda: router.nominate(query, nprobe=1))
    assert not decision.exhaustive
    assert "r0007" in decision.candidate_ids
