"""Overload — goodput plateau under admission control, plus the
wall-clock cost of the protected serving loop at 4x offered load."""

import numpy as np

from conftest import attach_summary, record_result
from repro.bench.experiments import overload_bench
from repro.core import EngineConfig, TextureSearchEngine
from repro.serving import (
    BatchPolicy,
    FusedEngineExecutor,
    build_trace,
    poisson_arrivals,
    simulate_serving,
)


def test_overload_sweep(benchmark):
    result = overload_bench.run(json_path="BENCH_overload.json")
    record_result(result)
    attach_summary(benchmark, result)
    benchmark.pedantic(
        overload_bench.run,
        kwargs=dict(quick=True, json_path="BENCH_overload.json"),
        rounds=1, iterations=1,
    )
    # the acceptance bar: goodput under admission control must plateau
    # (within 10% of its peak) at 4x offered capacity, not collapse
    assert result.summary["goodput_plateaus"] is True
    assert result.summary["goodput_plateau_ratio"] >= 0.9
    # ... while the unprotected baseline's p99 keeps growing
    assert result.summary["unprotected_p99_growth_x"] > 1.5


def test_protected_loop_kernel(benchmark):
    """Wall-clock of the bounded-queue loop shedding at 4x capacity."""
    rng = np.random.default_rng(0)
    cfg = EngineConfig(m=32, n=32, batch_size=4, min_matches=5, scale_factor=0.25)
    engine = TextureSearchEngine(cfg)
    descs = []
    for i in range(8):
        d = rng.random((cfg.d, cfg.n)).astype(np.float32)
        descs.append(d / np.linalg.norm(d, axis=0, keepdims=True) * 512)
        engine.add_reference(f"r{i}", descs[-1])
    executor = FusedEngineExecutor(engine)
    queries = [descs[i % len(descs)] for i in range(64)]
    _, group_us = executor.execute(queries[:8])
    rate = 8 / group_us * 1e6 * 4.0  # 4x calibrated capacity
    arrivals = poisson_arrivals(len(queries), rate, seed=0)
    policy = BatchPolicy(max_batch=8, max_queue_depth=16, shed="reject-new")

    def loop():
        trace = build_trace(arrivals, queries, deadline_us=4.0 * group_us)
        return simulate_serving(executor, trace, policy)

    report = benchmark(loop)
    assert report.n_offered == len(queries)
    assert report.n_rejected > 0  # 4x load must shed something
