"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` file regenerates one table/figure of the paper: it
runs the corresponding experiment (printing the table and writing it to
``benchmarks/results/``) and benchmarks a representative *real* kernel
with pytest-benchmark (wall-clock of our NumPy implementation — the
simulated-time rows come from the experiment output).

Set ``REPRO_BENCH_QUICK=1`` to skip the functional accuracy sweeps
(Tables 2 and 7 accuracy columns), which dominate runtime.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

RESULTS_DIR = Path(__file__).parent / "results"

QUICK = os.environ.get("REPRO_BENCH_QUICK", "0") == "1"


def record_result(result) -> str:
    """Print an ExperimentResult and persist it under results/."""
    text = result.to_text()
    RESULTS_DIR.mkdir(exist_ok=True)
    head = result.name.split(":", 1)[0].strip()
    if head.lower() == "ablation":
        # keep the ablation subject so files don't collide
        head = "ablation " + result.name.split(":", 1)[1].split("(")[0].split(",")[0].strip()
    slug = "".join(c if c.isalnum() or c == " " else "" for c in head.lower())
    slug = "_".join(slug.split())[:60]
    (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n")
    print("\n" + text)
    return text


def attach_summary(benchmark, result) -> None:
    """Expose experiment findings in the pytest-benchmark JSON."""
    for key, value in result.summary.items():
        benchmark.extra_info[str(key)] = (
            float(value) if isinstance(value, (int, float, np.floating)) else str(value)
        )


@pytest.fixture(scope="session")
def sift_descriptors():
    """A realistic (d, 768) SIFT descriptor matrix for kernel benches."""
    rng = np.random.default_rng(0)
    desc = rng.gamma(0.6, 1.0, size=(128, 768)).astype(np.float32)
    desc /= np.linalg.norm(desc, axis=0, keepdims=True)
    desc = np.minimum(desc, 0.2)
    desc /= np.linalg.norm(desc, axis=0, keepdims=True)
    return desc * 512.0
