"""Design-choice ablations (DESIGN.md Sec. 4): sort kernel, query
batching, CBIR vs. identification, stream scheduling models."""

from conftest import QUICK, attach_summary, record_result
from repro.bench.experiments import ablations


def test_ablation_sort_kernel(benchmark):
    result = ablations.run_sort_ablation()
    record_result(result)
    attach_summary(benchmark, result)
    benchmark(ablations.run_sort_ablation)
    assert result.summary["batch1_scan_speedup"] > 4.0
    assert result.summary["fp16_scan_penalty_batch1"] > 1.3
    assert result.summary["fp16_scan_gain_large_batch"] > 1.2


def test_ablation_query_batching(benchmark):
    result = ablations.run_query_batch_ablation()
    record_result(result)
    attach_summary(benchmark, result)
    benchmark(ablations.run_query_batch_ablation)
    assert result.summary["throughput_gain"] > 1.3
    assert result.summary["latency_cost"] > 5.0


def test_ablation_stream_models(benchmark):
    result = ablations.run_stream_model_ablation()
    record_result(result)
    attach_summary(benchmark, result)
    benchmark.pedantic(
        ablations.run_stream_model_ablation,
        kwargs=dict(streams_list=[1, 8], n_batches=16),
        rounds=1, iterations=1,
    )
    assert result.summary["ideal_saturates_by_2_streams"]


def test_ablation_verification_roc(benchmark):
    result = ablations.run_verification_ablation()
    record_result(result)
    attach_summary(benchmark, result)
    benchmark.pedantic(
        ablations.run_verification_ablation, kwargs=dict(n_bricks=6),
        rounds=1, iterations=1,
    )
    assert result.summary["eer"] < 0.15
    assert result.summary["genuine_median"] > 4 * max(result.summary["impostor_median"], 1)


def test_ablation_lsh_compression(benchmark):
    n_bricks = 8 if QUICK else 16
    result = ablations.run_lsh_ablation(n_bricks=n_bricks)
    record_result(result)
    attach_summary(benchmark, result)
    benchmark.pedantic(
        ablations.run_lsh_ablation, kwargs=dict(n_bricks=6, bit_widths=[64]),
        rounds=1, iterations=1,
    )
    assert result.summary["lsh64_impostor_median"] >= result.summary["lsh1024_impostor_median"]


def test_ablation_cbir(benchmark):
    n_bricks = 12 if QUICK else 40
    result = ablations.run_cbir_ablation(n_bricks=n_bricks)
    record_result(result)
    attach_summary(benchmark, result)
    benchmark.pedantic(
        ablations.run_cbir_ablation, kwargs=dict(n_bricks=8),
        rounds=1, iterations=1,
    )
    assert result.summary["identification_decisive"] >= 0.8
    assert result.summary["decisive_gap"] > 0.3
