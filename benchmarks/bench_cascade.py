"""Cascade prefilter — GEMM-pair reduction at verdict parity, plus
the wall-clock cost of one Hamming prefilter pass over a batch."""

import numpy as np

from conftest import attach_summary, record_result
from repro.bench.experiments import cascade_bench
from repro.bench.experiments.fault_tolerance import _make_descriptors, _noisy
from repro.core.cascade import CascadeKernel
from repro.core.config import EngineConfig
from repro.core.engine import TextureSearchEngine


def test_cascade_sweep(benchmark):
    result = cascade_bench.run(json_path="BENCH_cascade.json")
    record_result(result)
    attach_summary(benchmark, result)
    benchmark.pedantic(
        cascade_bench.run,
        kwargs=dict(quick=True, json_path="BENCH_cascade.json"),
        rounds=1, iterations=1,
    )
    # the acceptance bar: at default knobs on the largest corpus, the
    # verdicts are bit-equal to algorithm1 while >= 3x fewer descriptor
    # pairs reach the exact GEMM (prune cost charged, not free)
    assert result.summary["meets_reduction_bar"] is True
    point = result.summary["default_knobs_operating_point"]
    assert point["verdict_parity_vs_algorithm1"] is True
    assert point["gemm_pair_reduction_x"] >= cascade_bench.MIN_PAIR_REDUCTION
    assert point["cost_reduction_x"] >= cascade_bench.MIN_PAIR_REDUCTION


def test_prefilter_wallclock(benchmark):
    """Host wall-clock of one coarse-to-fine prune over a full sweep."""
    rng = np.random.default_rng(0)
    config = EngineConfig(
        m=48, n=48, batch_size=4, min_matches=5,
        backend="cascade", precision="fp32",
    )
    engine = TextureSearchEngine(config, kernel=CascadeKernel(config))
    descs = [_make_descriptors(rng, count=48) for _ in range(96)]
    for i, desc in enumerate(descs):
        engine.add_reference(f"r{i:04d}", desc)
    engine.flush()
    query = _noisy(rng, descs[7])

    result = benchmark(lambda: engine.search(query))
    assert result.best().reference_id == "r0007"
    assert result.cascade_pruned >= 90
