"""Figure 1 — cumulative optimization waterfall (31x speed, 20x capacity)."""

from conftest import attach_summary, record_result
from repro.bench.experiments import fig1_waterfall


def test_fig1_waterfall(benchmark):
    result = fig1_waterfall.run()
    record_result(result)
    attach_summary(benchmark, result)
    benchmark(fig1_waterfall.run)
    assert 25.0 < result.summary["final_speedup"] < 40.0       # paper 31x
    assert 16.0 < result.summary["final_capacity_gain"] < 25.0  # paper 20x
    speeds = result.column("speed (img/s)")
    # batching is the single largest jump, as in the paper's figure
    jumps = [speeds[i + 1] / speeds[i] for i in range(len(speeds) - 1)]
    assert max(jumps) == jumps[2]
