"""Table 1 — cuBLAS 2-NN pipeline (per-step times, speeds, memory).

Regenerates the table from the calibrated models and benchmarks the
real Algorithm-1 kernel (FP32, m = n = 768) on this machine.
"""

import numpy as np

from conftest import attach_summary, record_result
from repro.bench.experiments import table1_cublas
from repro.core import knn_algorithm1, prepare_query, prepare_reference
from repro.gpusim import GPUDevice, TESLA_P100


def test_table1_rows(benchmark):
    result = table1_cublas.run()
    record_result(result)
    attach_summary(benchmark, result)
    benchmark(table1_cublas.run)
    # paper-shape assertions (who wins, by what factor)
    speeds = result.row_by("Execution step", "Speed (images/s)")[1:]
    opencv, garcia, ours, ours16 = speeds
    assert ours / opencv > 3.0  # paper: 3.3x
    assert garcia > opencv
    assert ours16 < ours  # FP16 batch-1 dip (Sec. 4.2)


def test_algorithm1_kernel_fp32(benchmark, sift_descriptors):
    """Wall-clock of one real 768x768x128 Algorithm-1 match (FP32)."""
    device = GPUDevice(TESLA_P100)
    ref = prepare_reference(sift_descriptors, "fp32")
    rng = np.random.default_rng(1)
    q = np.maximum(sift_descriptors + rng.normal(0, 10, sift_descriptors.shape), 0)
    query = prepare_query(device, q.astype(np.float32), "fp32")
    benchmark(knn_algorithm1, device, ref, query)


def test_algorithm1_kernel_fp16(benchmark, sift_descriptors):
    """Wall-clock of the FP16 path (scale 2^-7) of Algorithm 1."""
    device = GPUDevice(TESLA_P100)
    scale = 2.0**-7
    ref = prepare_reference(sift_descriptors, "fp16", scale)
    rng = np.random.default_rng(2)
    q = np.maximum(sift_descriptors + rng.normal(0, 10, sift_descriptors.shape), 0)
    query = prepare_query(device, q.astype(np.float32), "fp16", scale)
    benchmark(knn_algorithm1, device, ref, query)
