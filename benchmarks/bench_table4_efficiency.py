"""Table 4 — GPU efficiency (Eq. 3) at batch 1024."""

from conftest import attach_summary, record_result
from repro.bench.experiments import table4_efficiency
from repro.metrics import gpu_efficiency
from repro.gpusim import TESLA_P100


def test_table4_rows(benchmark):
    result = table4_efficiency.run()
    record_result(result)
    attach_summary(benchmark, result)
    benchmark(table4_efficiency.run)
    p100 = result.summary["Tesla P100 card"]
    v100 = result.summary["Tesla V100 card w/o Tensor Core"]
    tc = result.summary["Tesla V100 card w/ Tensor Core"]
    assert 0.30 < p100 < 0.42       # paper 35.8%
    assert 0.28 < v100 < 0.42       # paper 35.5%
    assert tc < 0.15                # paper 11.4% — TC peak is unreachable


def test_efficiency_metric_kernel(benchmark):
    benchmark(gpu_efficiency, TESLA_P100, 45539.0)
