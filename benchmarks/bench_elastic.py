"""Elastic — static vs autoscaled fleets on a seeded diurnal trace,
plus the flash-crowd reaction and the mid-stream replica kill."""

from conftest import attach_summary, record_result
from repro.bench.experiments import elastic_bench


def test_elastic_fleets(benchmark):
    result = elastic_bench.run(json_path="BENCH_elastic.json")
    record_result(result)
    attach_summary(benchmark, result)
    benchmark.pedantic(
        elastic_bench.run,
        kwargs=dict(quick=True, json_path="BENCH_elastic.json"),
        rounds=1, iterations=1,
    )
    # the acceptance bar: the autoscaled fleet holds goodput within 5%
    # of the peak-sized static fleet at strictly fewer node-seconds ...
    assert result.summary["elastic_within_5pct_of_peak"] is True
    assert result.summary["elastic_cheaper_than_peak"] is True
    assert result.summary["node_seconds_saved"] > 0
    # ... the flash crowd pages CRITICAL and the page buys a reaction ...
    assert result.summary["flash_critical_fired"] is True
    # ... killing one replica of an R=2 shard never yields a partial ...
    assert result.summary["replica_kill_zero_partials"] is True
    # ... and the whole timeline replays byte-identically
    assert result.summary["deterministic_replay"] is True
