"""SLO — burn-rate alerting on the overload trace, plus the wall-clock
cost of one telemetry scrape + SLO evaluation against a live registry."""

from conftest import attach_summary, record_result
from repro.bench.experiments import slo_bench
from repro.obs import (
    BurnRateRule,
    SeriesSelection,
    SloEngine,
    SloPolicy,
    TimeSeriesRecorder,
    default_registry,
    reset_observability,
)


def test_slo_alerting(benchmark):
    result = slo_bench.run(json_path="BENCH_slo.json")
    record_result(result)
    attach_summary(benchmark, result)
    benchmark.pedantic(
        slo_bench.run,
        kwargs=dict(quick=True, json_path="BENCH_slo.json"),
        rounds=1, iterations=1,
    )
    # the acceptance bar: on the unprotected overload replay the burn-rate
    # alert must reach CRITICAL before goodput collapses ...
    assert result.summary["critical_fired"] is True
    assert result.summary["critical_before_collapse"] is True
    assert result.summary["alert_lead_us"] > 0
    # ... the admission-controlled config never pages ...
    assert result.summary["protected_never_critical"] is True
    # ... and the telemetry itself costs <5% of a fused cluster sweep
    assert result.summary["overhead_within_budget"] is True
    assert result.summary["telemetry_overhead_pct"] < 5.0


def test_scrape_evaluate_kernel(benchmark):
    """Wall-clock of one recorder scrape + two-policy SLO evaluation."""
    reset_observability()
    registry = default_registry()
    latency = registry.histogram(
        "bench_slo_latency_us", "synthetic latency", labelnames=()
    )
    total = registry.counter("bench_slo_requests_total", "synthetic totals")
    errors = registry.counter("bench_slo_errors_total", "synthetic errors")
    recorder = TimeSeriesRecorder(interval_us=1_000.0, retention=512)
    engine = SloEngine(
        [
            SloPolicy(
                name="bench-latency", kind="latency", objective=0.9,
                metric="bench_slo_latency_us", threshold_us=5_000.0,
                critical=BurnRateRule(4_000.0, 16_000.0, 3.0),
                warning=BurnRateRule(8_000.0, 32_000.0, 1.0),
            ),
            SloPolicy(
                name="bench-availability", kind="availability", objective=0.99,
                error_series=(SeriesSelection("bench_slo_errors_total"),),
                total_series=(SeriesSelection("bench_slo_requests_total"),),
                critical=BurnRateRule(4_000.0, 16_000.0, 10.0),
                warning=BurnRateRule(8_000.0, 32_000.0, 2.0),
            ),
        ]
    )
    engine.attach(recorder)
    state = {"i": 0}

    def scrape():
        state["i"] += 1
        latency.observe(100.0 * (state["i"] % 40))
        total.inc()
        if state["i"] % 50 == 0:
            errors.inc()
        recorder.advance_by(1_000.0)

    try:
        benchmark(scrape)
    finally:
        engine.detach()
        reset_observability()
    assert len(recorder) > 1
    assert engine.state_of("bench-latency") in ("ok", "warning", "critical")
