"""Serving — dynamic batching sweep, plus the wall-clock cost of one
fused group through the serving event loop."""

import numpy as np

from conftest import attach_summary, record_result
from repro.bench.experiments import serving_bench
from repro.core import EngineConfig, TextureSearchEngine
from repro.serving import (
    BatchPolicy,
    FusedEngineExecutor,
    build_trace,
    burst_arrivals,
    simulate_serving,
)


def test_serving_sweep(benchmark):
    result = serving_bench.run(json_path="BENCH_serving.json")
    record_result(result)
    attach_summary(benchmark, result)
    benchmark.pedantic(
        serving_bench.run,
        kwargs=dict(quick=True, json_path="BENCH_serving.json"),
        rounds=1, iterations=1,
    )
    # the acceptance bar: batching must strictly beat per-query serving
    # once four queries contend for the device
    assert result.summary["fused_speedup_at_conc4"] > 1.0


def test_serving_loop_kernel(benchmark):
    """Wall-clock of the event loop driving fused groups end to end."""
    rng = np.random.default_rng(0)
    cfg = EngineConfig(m=32, n=32, batch_size=4, min_matches=5, scale_factor=0.25)
    engine = TextureSearchEngine(cfg)
    descs = []
    for i in range(8):
        d = rng.random((cfg.d, cfg.n)).astype(np.float32)
        descs.append(d / np.linalg.norm(d, axis=0, keepdims=True) * 512)
        engine.add_reference(f"r{i}", descs[i])
    queries = [
        np.abs(descs[i % 8] + rng.normal(0, 3, descs[0].shape)).astype(np.float32)
        for i in range(16)
    ]
    trace = build_trace(burst_arrivals(4, 4, 1_000.0), queries)
    executor = FusedEngineExecutor(engine)
    policy = BatchPolicy(max_batch=4, max_wait_us=2_000.0)

    report = benchmark(simulate_serving, executor, trace, policy)
    assert report.n_requests == 16
    assert report.mean_group_size == 4.0
