"""Table 7 — asymmetric feature counts: accuracy x speed sweep.

Accuracy runs the real engine over the synthetic-feature dataset at the
paper's exact (m, n) grid (skipped with REPRO_BENCH_QUICK=1); speed
comes from the calibrated chain model.
"""

import numpy as np

from conftest import QUICK, attach_summary, record_result
from repro.bench.experiments import table7_asymmetric
from repro.core import EngineConfig, TextureSearchEngine
from repro.data import build_feature_dataset


def test_table7_rows(benchmark):
    result = table7_asymmetric.run(with_accuracy=not QUICK)
    record_result(result)
    attach_summary(benchmark, result)
    speeds = {(row[0], row[1]): row[3] for row in result.rows}
    assert speeds[(384, 768)] / speeds[(768, 768)] > 1.25  # paper +34.6%
    assert speeds[(384, 384)] > speeds[(384, 768)]
    if not QUICK:
        acc = {(row[0], row[1]): float(row[2].rstrip("%")) for row in result.rows}
        assert acc[(768, 768)] - acc[(384, 768)] <= 3.0    # paper -0.28%
        assert acc[(384, 384)] < acc[(384, 768)] + 1e-9    # n-cut hurts
        assert acc[(256, 768)] < acc[(384, 768)] + 1e-9    # m=256 knee
    benchmark.pedantic(
        table7_asymmetric.run, kwargs=dict(with_accuracy=False),
        rounds=1, iterations=1,
    )


def test_engine_search_kernel_asymmetric(benchmark):
    """Wall-clock of one real engine search: 32 references at the
    production configuration m=384, n=768, FP16 + RootSIFT."""
    dataset = build_feature_dataset(32, m_reference=384, n_query=768, seed=3)
    engine = TextureSearchEngine(
        EngineConfig(m=384, n=768, precision="fp16", scale_factor=0.25, batch_size=32)
    )
    for ref in dataset.references:
        engine.add_reference(str(ref.brick_id), ref.descriptors)
    engine.flush()
    query = dataset.queries[0].descriptors
    result = benchmark.pedantic(engine.search, args=(query,), rounds=3, iterations=1)
    assert result.images_searched == 32
