"""Table 2 — FP16 compression error and accuracy vs. scale factor.

The error metric runs the real FP16-accumulated distance pipeline over
same-brick pairs; accuracy runs the full engine over the synthetic
dataset (skipped with REPRO_BENCH_QUICK=1).
"""

from conftest import QUICK, attach_summary, record_result
from repro.bench.experiments import table2_fp16
from repro.fp16 import compression_error
from repro.data import SyntheticFeatureModel


def test_table2_rows(benchmark):
    result = table2_fp16.run(with_accuracy=not QUICK)
    record_result(result)
    attach_summary(benchmark, result)
    # shape assertions
    errors = dict(zip(result.column("scale factor"), result.column("avg compression error")))
    assert errors["1"] == "overflow"
    assert errors["2^-1"] == "overflow"
    plateau = float(errors["2^-7"].rstrip("%"))
    deep = float(errors["2^-16"].rstrip("%"))
    assert 0 < plateau < 0.5
    assert deep > plateau
    benchmark.pedantic(
        table2_fp16.run,
        kwargs=dict(n_pairs=2, n_bricks=4, with_accuracy=False,
                    scales=[2.0**-2, 2.0**-7]),
        rounds=1, iterations=1,
    )


def test_compression_error_kernel(benchmark):
    """Wall-clock of Eq. 2 on one 768 x 768 pair at the paper's scale."""
    model = SyntheticFeatureModel(seed=0)
    ref = model.capture(0, "reference").top(768).descriptors
    qry = model.capture(0, "query").top(768).descriptors
    benchmark.pedantic(compression_error, args=(ref, qry, 2.0**-7), rounds=3, iterations=1)
