"""Table 5 — hybrid cache: GPU vs. host (pinned / pageable)."""

import numpy as np

from conftest import attach_summary, record_result
from repro.bench.experiments import table5_hybrid_cache
from repro.cache import HybridFeatureCache
from repro.core import BatchBuilder
from repro.gpusim import GPUDevice, TESLA_P100


def test_table5_rows(benchmark):
    result = table5_hybrid_cache.run()
    record_result(result)
    attach_summary(benchmark, result)
    benchmark(table5_hybrid_cache.run)
    gpu = result.row_by("Cache type", "GPU memory")[1]
    pinned = result.row_by("Cache type", "Host memory w/ pinned")[1]
    pageable = result.row_by("Cache type", "Host memory w/o pinned")[1]
    assert pageable < pinned < gpu  # paper's ordering
    assert 0.35 < pinned / gpu < 0.70  # paper: 44% drop to pinned host


def test_hybrid_cache_churn(benchmark):
    """Wall-clock of enqueuing 64 batches through a two-level cache
    (eviction + demotion machinery)."""

    def churn():
        device = GPUDevice(TESLA_P100.with_memory(32 * 1024 * 1024))
        cache = HybridFeatureCache(device, gpu_budget_bytes=1024 * 1024,
                                   host_budget_bytes=512 * 1024 * 1024)
        builder = BatchBuilder(batch_size=4, d=128, m=64)
        for i in range(256):
            batch = builder.add(f"r{i}", np.zeros((128, 64), np.float16))
            if batch is not None:
                cache.add(batch)
        return cache.gpu_batches, cache.host_batches

    gpu_batches, host_batches = benchmark(churn)
    assert gpu_batches > 0 and host_batches > 0
