"""Fault tolerance — throughput/recall under injected failures, plus the
wall-clock cost of a fault-gated scatter-gather."""

import numpy as np

from conftest import attach_summary, record_result
from repro.bench.experiments import fault_tolerance
from repro.core import EngineConfig
from repro.distributed import (
    DistributedSearchSystem,
    FaultInjector,
    FaultSpec,
    RetryPolicy,
)


def test_fault_tolerance_sweep(benchmark):
    result = fault_tolerance.run()
    record_result(result)
    attach_summary(benchmark, result)
    benchmark.pedantic(
        fault_tolerance.run,
        kwargs=dict(n_nodes=4, n_refs=8, n_queries=4, failure_rates=(0.0, 0.1)),
        rounds=1, iterations=1,
    )
    # a clean cluster must be answer-perfect, and the layer must keep
    # recall high while failing over under the worst injected rate
    assert result.summary["clean_recall"] == 1.0
    assert result.summary["worst_rate_recall"] >= 0.75
    assert result.summary["total_failed_over"] > 0
    assert result.summary["worst_rate_images_per_s"] > 0


def test_faulty_search_kernel(benchmark):
    """Wall-clock of one scatter-gather with the fault gate active.

    Slow-node faults keep every iteration complete (the benchmark loop
    runs the search thousands of times, so rate-based crashes would
    eventually kill every container mid-run)."""
    rng = np.random.default_rng(0)
    cfg = EngineConfig(m=64, n=64, batch_size=4, min_matches=5, scale_factor=0.25)
    injector = FaultInjector(FaultSpec(slow_rate=0.2, slow_multiplier=4.0), seed=0)
    system = DistributedSearchSystem(
        4, cfg,
        fault_injector=injector,
        retry_policy=RetryPolicy(max_attempts=4, backoff_us=500.0),
    )
    descs = {}
    for i in range(16):
        d = rng.random((128, 64)).astype(np.float32)
        descs[i] = d / np.linalg.norm(d, axis=0, keepdims=True) * 512
        system.add(f"r{i}", descs[i])
    query = np.abs(descs[7] + rng.normal(0, 3, descs[7].shape)).astype(np.float32)
    result = benchmark(system.search, query)
    assert result.best().reference_id == "r7"
