"""Table 6 — multi-stream overlap of PCIe transfer and compute."""

from conftest import attach_summary, record_result
from repro.bench.experiments import table6_streams
from repro.gpusim import KernelCalibration, TESLA_P100
from repro.pipeline import plan_streams


def test_table6_rows(benchmark):
    result = table6_streams.run()
    record_result(result)
    attach_summary(benchmark, result)
    benchmark(table6_streams.run)
    b512 = [row for row in result.rows if row[0] == 512]
    speeds = [row[3] for row in b512]
    assert speeds == sorted(speeds)  # more streams, more speed
    assert result.summary["b512_s8_efficiency"] > 0.80  # paper 87.3%
    assert result.summary["theoretical_images_per_s"] < 49000  # PCIe bound


def test_stream_planner_kernel(benchmark):
    cal = KernelCalibration.for_device(TESLA_P100)
    benchmark(plan_streams, TESLA_P100, cal, 8, 512)
