"""Section 8 — the 14-GPU distributed search system."""

import numpy as np

from conftest import attach_summary, record_result
from repro.bench.experiments import sec8_distributed
from repro.core import EngineConfig
from repro.distributed import DistributedSearchSystem, FeatureRecord, deserialize_record, serialize_record


def test_sec8_system(benchmark):
    result = sec8_distributed.run()
    record_result(result)
    attach_summary(benchmark, result)
    benchmark.pedantic(
        sec8_distributed.run,
        kwargs=dict(functional_nodes=2, functional_bricks=4),
        rounds=1, iterations=1,
    )
    assert result.summary["functional_top1_correct"]
    # paper: 10.8 M cached matrices, 872,984 img/s, ~1.15 s for 1M
    assert result.summary["cluster_capacity_images"] == 10_824_021 or (
        abs(result.summary["cluster_capacity_images"] - 10.8e6) / 10.8e6 < 0.05
    )
    assert abs(result.summary["cluster_speed_images_per_s"] - 872_984) / 872_984 < 0.15


def test_cluster_search_kernel(benchmark):
    """Wall-clock of one scatter-gather search over a 4-node cluster."""
    rng = np.random.default_rng(0)
    cfg = EngineConfig(m=64, n=64, batch_size=4, min_matches=5, scale_factor=0.25)
    system = DistributedSearchSystem(4, cfg)
    descs = {}
    for i in range(16):
        d = rng.random((128, 64)).astype(np.float32)
        descs[i] = d / np.linalg.norm(d, axis=0, keepdims=True) * 512
        system.add(f"r{i}", descs[i])
    query = np.abs(descs[7] + rng.normal(0, 3, descs[7].shape)).astype(np.float32)
    result = benchmark(system.search, query)
    assert result.best().reference_id == "r7"


def test_serialization_kernel(benchmark):
    """Wall-clock of a protobuf-style roundtrip of one m=384 record."""
    rng = np.random.default_rng(1)
    record = FeatureRecord("brick-1", rng.random((128, 384)).astype(np.float16), "fp16", 0.25)

    def roundtrip():
        return deserialize_record(serialize_record(record))

    back = benchmark(roundtrip)
    assert back.ref_id == "brick-1"
