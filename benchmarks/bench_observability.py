"""Observability — instrumentation overhead on the fused sweep path,
plus the wall-clock cost of the metrics/tracing primitives themselves."""

from conftest import attach_summary, record_result
from repro.bench.experiments import observability
from repro.obs import MetricsRegistry, RequestTracer


def test_observability_overhead(benchmark):
    result = observability.run(json_path="BENCH_observability.json")
    record_result(result)
    attach_summary(benchmark, result)
    benchmark.pedantic(
        observability.run,
        kwargs=dict(repeats=2, json_path="BENCH_observability.json"),
        rounds=1, iterations=1,
    )
    # the acceptance bar: full instrumentation must stay under 5%
    # wall-clock overhead on the hot sweep path
    assert result.summary["within_budget"], result.summary


def test_metric_primitives_kernel(benchmark):
    """Raw cost of the instrument sites: one labeled counter inc, one
    histogram observe, one span open/close per iteration."""
    registry = MetricsRegistry()
    tracer = RequestTracer()
    tracer.enable()
    counter = registry.counter("bench_ops_total", "ops", ("kind",))
    child = counter.labels(kind="hit")
    hist = registry.histogram("bench_latency_us", "latency")

    def instrument_once():
        child.inc()
        hist.observe(42.0)
        with tracer.span("bench.op", layer="bench"):
            pass

    benchmark(instrument_once)
    assert counter.labels(kind="hit").value > 0
    assert tracer.spans
