"""Figure 4 — search speed vs. batch size (P100, V100, V100+TC)."""

import numpy as np

from conftest import attach_summary, record_result
from repro.bench.experiments import fig4_batching
from repro.core import knn_algorithm2
from repro.features import rootsift
from repro.gpusim import GPUDevice, TESLA_P100


def test_fig4_series(benchmark):
    result = fig4_batching.run()
    record_result(result)
    attach_summary(benchmark, result)
    benchmark(fig4_batching.run)
    # shape: large speedup from batching, flat past 256, TC on top
    assert 6.0 < result.summary["p100_speedup"] < 10.0
    assert result.summary["tensor_core_gain_at_max_batch"] > 1.15
    p100 = result.column("P100 (img/s)")
    assert p100[-1] / p100[-2] < 1.05


def _batch(batch, m=768, seed=0):
    rng = np.random.default_rng(seed)
    out = []
    for i in range(batch):
        d = rng.gamma(0.6, 1.0, size=(128, m)).astype(np.float32)
        out.append(rootsift(d) * np.float32(0.25))
    return np.stack(out).astype(np.float16)


def test_algorithm2_kernel_batch16(benchmark):
    """Wall-clock of a real batched Algorithm-2 call (batch 16)."""
    device = GPUDevice(TESLA_P100)
    refs = _batch(16)
    query = refs[0].copy()
    benchmark.pedantic(
        knn_algorithm2, args=(device, refs, query),
        kwargs=dict(scale=0.25, precision="fp16"),
        rounds=3, iterations=1,
    )


def test_algorithm2_kernel_batch1(benchmark):
    """Wall-clock of the unbatched Algorithm-2 call, for contrast."""
    device = GPUDevice(TESLA_P100)
    refs = _batch(1)
    query = refs[0].copy()
    benchmark.pedantic(
        knn_algorithm2, args=(device, refs, query),
        kwargs=dict(scale=0.25, precision="fp16"),
        rounds=5, iterations=1,
    )
