"""Table 3 — per-step time, batch 1 vs. batch 1024 (Algorithm 2, FP16)."""

from conftest import attach_summary, record_result
from repro.bench.experiments import table3_batch_steps
from repro.core import functional_topk
import numpy as np


def test_table3_rows(benchmark):
    result = table3_batch_steps.run()
    record_result(result)
    attach_summary(benchmark, result)
    benchmark(table3_batch_steps.run)
    assert result.summary["speedup"] > 6.0           # paper: 7.9x
    assert result.summary["sort_reduction"] > 0.90   # paper: 94.5%
    assert result.summary["hgemm_reduction"] > 0.45  # paper: 55.6%


def test_top2_selection_kernel(benchmark):
    """Wall-clock of the functional top-2 over a 768 x 12288 matrix
    (one batch-16 similarity block)."""
    rng = np.random.default_rng(0)
    a = rng.random((768, 16 * 768)).astype(np.float32)
    benchmark(functional_topk, a, 2)
