"""Enrollment — mixed search+enroll serving under epoched indexes,
plus the host-side cost of one online enrollment into a live cluster."""

import numpy as np

from conftest import attach_summary, record_result
from repro.bench.experiments import enrollment_bench
from repro.bench.experiments.fault_tolerance import _make_descriptors
from repro.core.config import EngineConfig
from repro.distributed import DistributedSearchSystem
from repro.routing import RouterPolicy


def test_enrollment_sweep(benchmark):
    result = enrollment_bench.run(json_path="BENCH_enrollment.json")
    record_result(result)
    attach_summary(benchmark, result)
    benchmark.pedantic(
        enrollment_bench.run,
        kwargs=dict(quick=True, json_path="BENCH_enrollment.json"),
        rounds=1, iterations=1,
    )
    # the acceptance bar: at equal offered load, mixing enrollments
    # into the trace degrades search p99 by < 20% vs search-only ...
    assert result.summary["meets_bar"] is True
    assert (
        result.summary["worst_p99_degradation"]
        < enrollment_bench.MAX_P99_DEGRADATION
    )
    # ... and every enrollment is read-your-writes visible: the later
    # probe search returns it with corpus_epoch >= the ack's epoch
    assert result.summary["read_your_writes_recall_min"] == 1.0


def test_enrollment_kernel(benchmark):
    """Wall-clock of one online enrollment (KV write + placement +
    engine add + incremental router absorb) into a live 96-ref cluster."""
    config = EngineConfig(m=32, n=32, batch_size=4, min_matches=5, scale_factor=0.25)
    rng = np.random.default_rng(0)
    system = DistributedSearchSystem(
        n_nodes=4, engine_config=config,
        router_policy=RouterPolicy(kind="ivf", n_lists=12, seed=0),
    )
    for i in range(96):
        system.add(f"r{i:04d}", _make_descriptors(rng, count=config.n, d=config.d))
    system.build_router()
    desc = _make_descriptors(rng, count=config.n, d=config.d)

    counter = iter(range(10**9))

    def _enroll():
        return system.enroll(f"new{next(counter):06d}", desc)

    ack = benchmark(_enroll)
    assert ack.epoch > 0
    assert system.has(ack.ref_id)
